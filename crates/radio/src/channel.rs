//! Per-round resolution of the collision-prone broadcast channel.
//!
//! Implements the delivery rule of Section 2 of the paper:
//!
//! > there exists a round `rcf` such that in every round `r >= rcf`:
//! > if some source `pi` broadcasts a message `m` in round `r`, and
//! > (i) some non-failed receiver `pj` is within distance `R1` of
//! > `pi`, and (ii) no \[other\] node within distance `R2` of `pj`
//! > broadcasts in round `r`, then `pj` receives the message `m`.
//!
//! together with the collision-detector Properties 1 (completeness —
//! enforced structurally, in every round) and 2 (eventual accuracy —
//! enforced from round `racc` onwards).
//!
//! Nodes are half-duplex: a broadcaster does not receive other nodes'
//! messages in the same round (it does observe its own, which models
//! the sender knowing what it sent). Consequently two broadcasters
//! within `R1` of each other each *lose* the other's message, and
//! completeness forces both their detectors to report a collision —
//! exactly the behaviour contention management must eventually
//! eliminate.

use crate::adversary::Adversary;
use crate::config::RadioConfig;
use crate::engine::NodeId;
use crate::geometry::{Point, SpatialGrid};
use crate::pool::WorkerPool;
use rand::rngs::StdRng;
use std::cell::UnsafeCell;
use vi_telemetry::{trace_export, Phase, Probe};

/// A node's transmission decision for one round.
#[derive(Clone, Debug)]
pub struct TxIntent<M> {
    /// The node making the decision.
    pub node: NodeId,
    /// Where the node currently is.
    pub pos: Point,
    /// `Some(payload)` to broadcast, `None` to listen.
    pub payload: Option<M>,
}

/// What one node observes at the end of a round: the received messages
/// plus the collision-detector output.
///
/// A borrowed view into engine-owned round storage (see
/// [`ReceptionBuffer`]), so delivering outcomes allocates nothing;
/// protocols copy out whatever they keep beyond the round.
#[derive(Clone, Copy, Debug)]
pub struct RoundReception<'a, M> {
    /// Messages received this round, in deterministic (sender) order.
    /// Senders are anonymous: the model gives nodes no unique
    /// identifiers, so payloads arrive unattributed.
    pub messages: &'a [M],
    /// Collision-detector output: `true` means the detector delivered
    /// the `±` indication to this node.
    pub collision: bool,
}

impl<M> RoundReception<'_, M> {
    /// `true` if nothing was received and no collision was indicated
    /// (the paper's "silent round" from this node's perspective).
    pub fn is_silent(&self) -> bool {
        self.messages.is_empty() && !self.collision
    }
}

/// Per-node reception with sender attribution, for traces and
/// debugging only (protocols receive the anonymous
/// [`RoundReception`]).
#[derive(Clone, Debug, PartialEq)]
pub struct AttributedReception<M> {
    /// The receiving node.
    pub node: NodeId,
    /// `(sender, payload)` pairs in sender order.
    pub messages: Vec<(NodeId, M)>,
    /// Collision-detector output.
    pub collision: bool,
}

impl<M> AttributedReception<M> {
    /// `true` if nothing was received and no collision was indicated.
    pub fn is_silent(&self) -> bool {
        self.messages.is_empty() && !self.collision
    }
}

/// Reusable SoA storage for one round of receptions: one entry per
/// intent, with all senders/payloads in two flat arrays sliced by
/// per-entry offsets.
///
/// This is the zero-allocation counterpart of
/// `Vec<AttributedReception<M>>`: clearing drops no per-entry `Vec`s,
/// and refilling reuses the flat buffers, so steady-state rounds make
/// no heap allocations once capacities have grown to the working-set
/// size.
#[derive(Clone, Debug)]
pub struct ReceptionBuffer<M> {
    nodes: Vec<NodeId>,
    collisions: Vec<bool>,
    /// `starts[k]..starts[k + 1]` slices `senders`/`messages` for
    /// entry `k` (always one more offset than entries).
    starts: Vec<u32>,
    senders: Vec<NodeId>,
    messages: Vec<M>,
}

impl<M> Default for ReceptionBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ReceptionBuffer<M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        ReceptionBuffer {
            nodes: Vec::new(),
            collisions: Vec::new(),
            starts: vec![0],
            senders: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Drops all entries, keeping every capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.collisions.clear();
        self.senders.clear();
        self.messages.clear();
        self.starts.clear();
        self.starts.push(0);
    }

    /// Number of complete entries.
    pub fn len(&self) -> usize {
        self.collisions.len()
    }

    /// `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.collisions.is_empty()
    }

    /// Opens the next entry. Must be balanced by
    /// [`ReceptionBuffer::finish`] after the entry's messages are
    /// pushed.
    pub fn begin(&mut self, node: NodeId) {
        debug_assert_eq!(self.nodes.len(), self.collisions.len(), "unbalanced begin");
        self.nodes.push(node);
    }

    /// Appends one received message to the open entry.
    pub fn push_message(&mut self, sender: NodeId, payload: M) {
        self.senders.push(sender);
        self.messages.push(payload);
    }

    /// Closes the open entry with the detector output.
    pub fn finish(&mut self, collision: bool) {
        self.collisions.push(collision);
        self.starts.push(self.messages.len() as u32);
    }

    /// The receiving node of entry `k`.
    pub fn node(&self, k: usize) -> NodeId {
        self.nodes[k]
    }

    /// The detector output of entry `k`.
    pub fn collision(&self, k: usize) -> bool {
        self.collisions[k]
    }

    fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.starts[k] as usize..self.starts[k + 1] as usize
    }

    /// The senders of entry `k`'s messages, in message order.
    pub fn senders(&self, k: usize) -> &[NodeId] {
        &self.senders[self.range(k)]
    }

    /// The payloads of entry `k`, in sender order.
    pub fn messages(&self, k: usize) -> &[M] {
        &self.messages[self.range(k)]
    }

    /// Entry `k` as the anonymous view a protocol receives.
    pub fn reception(&self, k: usize) -> RoundReception<'_, M> {
        RoundReception {
            messages: self.messages(k),
            collision: self.collisions[k],
        }
    }

    /// Expands the buffer into owned per-entry receptions (tests and
    /// differential comparisons; allocates freely).
    pub fn to_attributed(&self) -> Vec<AttributedReception<M>>
    where
        M: Clone,
    {
        (0..self.len())
            .map(|k| AttributedReception {
                node: self.nodes[k],
                messages: self
                    .senders(k)
                    .iter()
                    .copied()
                    .zip(self.messages(k).iter().cloned())
                    .collect(),
                collision: self.collisions[k],
            })
            .collect()
    }
}

/// What happened to the node topology since the previous
/// [`Medium::resolve_round_cached`] call, as tracked by the caller
/// (the engine's dirty-set of movers plus its live-set comparison).
#[derive(Clone, Copy, Debug)]
pub enum TopologyDelta<'a> {
    /// The participant set changed, or the caller lost track: drop all
    /// cached neighborhoods and re-anchor the index.
    Rebuild,
    /// Same participants, every position unchanged.
    Unchanged,
    /// Same participants; exactly these intent slots changed position.
    Moved(&'a [u32]),
}

/// Which geometry source a tile-sharded round reads (see
/// [`Medium::shard_geometry`]). Each variant mirrors one sequential
/// resolution path byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardMode {
    /// Steady cached round: the per-slot neighborhoods are valid, so
    /// workers only filter them down to the broadcasting subset.
    ScanCached,
    /// Re-anchor round: the full-topology grid was just rebuilt;
    /// workers recompute whole neighborhoods with one grid query each.
    RebuildAll,
    /// Churn-fallback round: the grid indexes this round's
    /// broadcasters only; workers query it and map grid slots back to
    /// intent indices.
    ChurnIndex,
}

/// One tile's worker-owned scratch: the receivers the tile owns plus
/// their concatenated `(slot, d²)` candidate lists, filled by the
/// parallel geometry phase and drained in intent order by the
/// sequential finalize phase. All buffers are reused round over round.
#[derive(Debug, Default)]
struct TileScratch {
    /// Receivers owned by this tile, ascending intent order.
    rxs: Vec<u32>,
    /// Offsets into `flat`: entry `k`'s list is
    /// `flat[starts[k]..starts[k + 1]]` (always one more offset than
    /// entries).
    starts: Vec<u32>,
    /// Concatenated per-receiver `(slot, d²)` candidate lists.
    flat: Vec<(u32, f64)>,
    /// Grid query scratch.
    query: Vec<(u32, f64)>,
    /// Finalize read position (an index into `rxs`).
    cursor: usize,
    /// Wall-clock span stamp of this tile's geometry pass (µs since
    /// the trace epoch; written by the owning worker only when span
    /// tracing is on, read by the control thread after the broadcast).
    span_start_us: u64,
    /// Span duration in µs (same lifecycle as `span_start_us`).
    span_dur_us: u64,
}

/// [`UnsafeCell`] wrapper giving each pool worker exclusive mutable
/// access to its own tile during a [`WorkerPool::broadcast`].
#[derive(Debug, Default)]
struct Tile(UnsafeCell<TileScratch>);

// SAFETY: during a broadcast, worker `w` dereferences `tiles[w]` and
// no other tile (the disjointness contract stated in
// `Medium::shard_geometry`), and the caller touches no tile until the
// broadcast has returned; outside a broadcast the `Medium` reaches
// tiles through `&mut self` only, so no aliasing is possible.
unsafe impl Sync for Tile {}

/// The shared broadcast medium: resolves rounds through a spatial
/// index with reusable per-round buffers.
///
/// This is the engine's hot path. The naive delivery rule is
/// O(receivers × broadcasters × nodes): for every (receiver,
/// broadcaster) pair it scans *all* broadcasters for an interferer.
/// `Medium` instead rebuilds a [`SpatialGrid`] over the round's
/// broadcasters (cell size `R2`) and answers "which broadcasters sit
/// within `R2` of this receiver?" with a 3×3-cell query, making the
/// round near-linear in the node count for bounded-density
/// deployments. All index and scratch buffers are owned by the
/// `Medium` and reused round over round, so resolution allocates
/// nothing in steady state beyond the delivered payloads themselves.
///
/// Observational equivalence with the naive rule is load-bearing:
/// [`Medium::resolve_into`] consults the [`Adversary`] for exactly the
/// same (round, sender, receiver) queries in exactly the same order as
/// [`resolve_round_reference`], so for any seed the two produce
/// byte-for-byte identical receptions, traces, and statistics (see the
/// differential tests in `tests/substrate_properties.rs`).
#[derive(Debug)]
pub struct Medium {
    cfg: RadioConfig,
    grid: SpatialGrid,
    /// Intent indices of this round's broadcasters.
    broadcasters: Vec<usize>,
    /// Broadcaster positions, parallel to `broadcasters` (grid input).
    broadcaster_pos: Vec<Point>,
    /// Scratch: grid query output (slots into `broadcasters`).
    candidates: Vec<u32>,
    /// Scratch: in-`R2` broadcaster intent indices, sorted ascending.
    neighbors: Vec<usize>,
    // --- cached-topology resolver state (resolve_round_cached) ---
    /// Whether `grid` + `nbr` currently describe a full node topology
    /// (as opposed to the legacy per-round broadcaster index).
    cache_ready: bool,
    /// Number of intent slots the cache covers.
    cached_n: usize,
    /// Scratch: all intent positions, for re-anchoring rebuilds.
    all_pos: Vec<Point>,
    /// Per-slot neighborhood: every other slot within `R2`, with its
    /// squared distance, ascending by slot.
    nbr: Vec<Vec<(u32, f64)>>,
    /// Scratch: which slots are moving this round (surgical updates).
    is_mover: Vec<bool>,
    /// Which slots broadcast this round (refreshed every round).
    is_tx: Vec<bool>,
    /// Scratch: a freshly queried neighborhood.
    fresh: Vec<(u32, f64)>,
    /// Scratch: the broadcasting subset of one receiver's neighborhood.
    txn: Vec<(u32, f64)>,
    /// Scratch: `(receiver << 32 | broadcaster, d²)` events for the
    /// sparse-broadcast scatter resolution.
    events: Vec<(u64, f64)>,
    // --- tile-sharded parallel resolution state ---
    /// Intra-round worker pool (`None` = fully sequential).
    pool: Option<WorkerPool>,
    /// Smallest intent count worth sharding across the pool.
    shard_min_slots: usize,
    /// One tile of geometry scratch per pool worker.
    tiles: Vec<Tile>,
    /// Telemetry handle (null by default: every site is one branch).
    /// Counter increments sit on the sequential control path only, so
    /// they are worker-count independent by construction.
    probe: Probe,
}

impl Medium {
    /// Movers-per-round threshold of the cached resolver: when more
    /// than one slot in `MOVER_REBUILD_NUM` moved, surgical
    /// neighborhood updates cost more than re-anchoring, so the round
    /// falls back to a full rebuild.
    const MOVER_REBUILD_NUM: usize = 4;

    /// Broadcaster-sparsity threshold of the scatter resolution: with
    /// fewer than one broadcaster per `SCATTER_MAX_TX_NUM` slots, the
    /// round is resolved by scattering from the broadcasters' cached
    /// neighborhoods instead of scanning every receiver's.
    const SCATTER_MAX_TX_NUM: usize = 8;

    /// Default smallest round (intent count) worth tile-sharding:
    /// below this, waking and joining the pool outweighs the geometry
    /// work being parallelized, so small rounds stay sequential even
    /// when a pool is configured.
    const DEFAULT_SHARD_MIN_SLOTS: usize = 4096;

    /// Creates a medium for the given radio parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RadioConfig::validate`]).
    pub fn new(cfg: RadioConfig) -> Self {
        cfg.validate().expect("invalid radio config");
        Medium {
            cfg,
            grid: SpatialGrid::new(cfg.r2),
            broadcasters: Vec::new(),
            broadcaster_pos: Vec::new(),
            candidates: Vec::new(),
            neighbors: Vec::new(),
            cache_ready: false,
            cached_n: 0,
            all_pos: Vec::new(),
            nbr: Vec::new(),
            is_mover: Vec::new(),
            is_tx: Vec::new(),
            fresh: Vec::new(),
            txn: Vec::new(),
            events: Vec::new(),
            pool: None,
            shard_min_slots: Self::DEFAULT_SHARD_MIN_SLOTS,
            tiles: Vec::new(),
            probe: Probe::disabled(),
        }
    }

    /// Installs a telemetry probe (a clone shares the caller's
    /// counters). The default probe is null and costs one branch.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Sets the intra-round worker count for tile-sharded resolution.
    ///
    /// `0` and `1` resolve rounds fully sequentially (releasing any
    /// pool); `workers >= 2` spawns a persistent [`WorkerPool`] and
    /// resolves sufficiently large rounds (see
    /// [`Medium::set_shard_min_slots`]) with the geometry phase
    /// sharded across row-band tiles of the anchored grid.
    ///
    /// Byte-identity is unconditional: at *any* worker count the
    /// resolver produces identical receptions, identical adversary
    /// consultation order, and an identical RNG stream, because
    /// workers only compute RNG-free geometry and the finalize phase
    /// replays the sequential order exactly.
    pub fn set_workers(&mut self, workers: usize) {
        if workers <= 1 {
            self.pool = None;
        } else if self.pool.as_ref().map(WorkerPool::workers) != Some(workers) {
            self.pool = Some(WorkerPool::new(workers));
        }
    }

    /// The configured intra-round worker count (`1` = sequential).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::workers)
    }

    /// Overrides the smallest round size worth sharding (clamped to at
    /// least 1). The default is tuned for real workloads; differential
    /// tests lower it to force the sharded path at toy sizes.
    pub fn set_shard_min_slots(&mut self, min: usize) {
        self.shard_min_slots = min.max(1);
    }

    /// Whether this round should take the tile-sharded path: a pool is
    /// configured, the round is big enough to amortize the broadcast,
    /// and the anchored grid has at least two bucket rows to band.
    fn shard_applicable(&self, n: usize) -> bool {
        self.pool.is_some() && n >= self.shard_min_slots && self.grid.rows() >= 2
    }

    /// Parallel geometry phase of a tile-sharded round.
    ///
    /// Tiles are contiguous bands of grid bucket rows: receiver `rx`
    /// belongs to tile `grid.row_of(pos) * workers / rows`, a pure
    /// function of its position and the grid anchor, so the worker
    /// filter here and the finalize walk agree on membership without
    /// communicating. Each pool worker fills *only its own* tile with
    /// the `(slot, d²)` candidate lists the finalize phase feeds to
    /// [`resolve_receiver`]. Cross-tile interference needs no explicit
    /// halo exchange: the grid is shared read-only and every query is
    /// exact, so a receiver near a band edge sees broadcasters from
    /// neighboring bands exactly as the sequential path does.
    ///
    /// Workers are RNG-free and intent-free by construction (positions
    /// come from the grid, or from `all_pos` in churn mode), which is
    /// what makes the sharded path byte-identical at any worker count.
    fn shard_geometry(&mut self, mode: ShardMode, n: usize) {
        let pool = self.pool.as_ref().expect("sharding needs a pool");
        let workers = pool.workers();
        if self.tiles.len() < workers {
            self.tiles.resize_with(workers, Tile::default);
        }
        for tile in &mut self.tiles[..workers] {
            let scratch = tile.0.get_mut();
            scratch.rxs.clear();
            scratch.flat.clear();
            scratch.starts.clear();
            scratch.starts.push(0);
            scratch.cursor = 0;
        }
        let grid = &self.grid;
        let nbr = &self.nbr;
        let is_tx = &self.is_tx;
        let broadcasters = &self.broadcasters;
        let all_pos = &self.all_pos;
        let tiles = &self.tiles[..workers];
        let rows = grid.rows();
        let r2 = self.cfg.r2;
        // Per-worker Perfetto spans: stamped into the worker-owned
        // tile (wall-clock only, never read by the resolver), pushed
        // to the global collector by the control thread below.
        let spans_on = self.probe.is_enabled() && trace_export::tracing_enabled();
        let job = move |w: usize| {
            // SAFETY: worker `w` dereferences tiles[w] and no other
            // tile, and `broadcast` below does not return until every
            // worker is done — see `Tile`.
            let scratch = unsafe { &mut *tiles[w].0.get() };
            if spans_on {
                scratch.span_start_us = trace_export::now_us();
            }
            for rx in 0..n as u32 {
                let pos = if mode == ShardMode::ChurnIndex {
                    all_pos[rx as usize]
                } else {
                    grid.position(rx)
                };
                if grid.row_of(pos) * workers / rows != w {
                    continue;
                }
                scratch.rxs.push(rx);
                match mode {
                    ShardMode::ScanCached => {
                        // The broadcasting subset of the cached
                        // neighborhood, exactly as the sequential scan.
                        scratch.flat.extend(
                            nbr[rx as usize]
                                .iter()
                                .copied()
                                .filter(|&(i, _)| is_tx[i as usize]),
                        );
                    }
                    ShardMode::RebuildAll => {
                        // Recompute the *full* neighborhood, exactly as
                        // the sequential re-anchor loop; finalize both
                        // installs it in the cache and filters it.
                        scratch.query.clear();
                        grid.query_within_d2(pos, r2, &mut scratch.query);
                        if let Ok(at) = scratch.query.binary_search_by_key(&rx, |&(i, _)| i) {
                            scratch.query.remove(at);
                        }
                        scratch.flat.extend_from_slice(&scratch.query);
                    }
                    ShardMode::ChurnIndex => {
                        // Broadcaster-only grid: map slots back to
                        // intent indices (ascending is preserved —
                        // `broadcasters` is sorted), exactly as the
                        // sequential churn loop.
                        scratch.query.clear();
                        grid.query_within_d2(pos, r2, &mut scratch.query);
                        scratch.flat.extend(
                            scratch
                                .query
                                .iter()
                                .map(|&(slot, d2)| (broadcasters[slot as usize] as u32, d2))
                                .filter(|&(i, _)| i != rx),
                        );
                    }
                }
                scratch.starts.push(scratch.flat.len() as u32);
            }
            if spans_on {
                scratch.span_dur_us = trace_export::now_us() - scratch.span_start_us;
            }
        };
        pool.broadcast(&job);
        if spans_on {
            for (w, tile) in self.tiles[..workers].iter_mut().enumerate() {
                let scratch = tile.0.get_mut();
                trace_export::record_span(
                    "shard-geometry",
                    "pool",
                    trace_export::PID_POOL,
                    w as u64,
                    scratch.span_start_us,
                    scratch.span_dur_us,
                );
            }
        }
    }

    /// Sequential finalize phase of a tile-sharded round: walks
    /// receivers in ascending intent order — the canonical merge order
    /// — popping each receiver's candidate list from its tile and
    /// running the verbatim [`resolve_receiver`] delivery rule. Every
    /// adversary and RNG consultation happens here, on one thread, in
    /// exactly the sequential resolver's order.
    fn shard_finalize<M: Clone>(
        &mut self,
        mode: ShardMode,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
        out: &mut ReceptionBuffer<M>,
    ) {
        let workers = self.pool.as_ref().expect("sharding needs a pool").workers();
        let rows = self.grid.rows();
        let cfg = self.cfg;
        for (j, rx_intent) in intents.iter().enumerate() {
            let pos = if mode == ShardMode::ChurnIndex {
                self.all_pos[j]
            } else {
                self.grid.position(j as u32)
            };
            let band = self.grid.row_of(pos) * workers / rows;
            let scratch = self.tiles[band].0.get_mut();
            let k = scratch.cursor;
            scratch.cursor += 1;
            debug_assert_eq!(scratch.rxs[k], j as u32, "band assignment must be stable");
            let range = scratch.starts[k] as usize..scratch.starts[k + 1] as usize;
            let j_broadcasting = rx_intent.payload.is_some();
            if mode == ShardMode::RebuildAll {
                // The worker computed the full neighborhood: install it
                // in the cache (the sequential re-anchor loop does the
                // same), then take the broadcasting subset.
                let full = &scratch.flat[range];
                self.nbr[j].clear();
                self.nbr[j].extend_from_slice(full);
                self.txn.clear();
                self.txn.extend(
                    full.iter()
                        .copied()
                        .filter(|&(i, _)| self.is_tx[i as usize]),
                );
                resolve_receiver(
                    &cfg,
                    round,
                    rx_intent,
                    j_broadcasting,
                    &self.txn,
                    intents,
                    adversary,
                    rng,
                    out,
                );
            } else {
                resolve_receiver(
                    &cfg,
                    round,
                    rx_intent,
                    j_broadcasting,
                    &scratch.flat[range],
                    intents,
                    adversary,
                    rng,
                    out,
                );
            }
        }
    }

    /// The radio parameters this medium resolves under.
    pub fn config(&self) -> &RadioConfig {
        &self.cfg
    }

    /// Resolves one round, appending one [`AttributedReception`] per
    /// intent (same order) to `out`.
    ///
    /// `intents` carries every *alive, participating* node exactly
    /// once. The adversary is consulted only within its mandate:
    /// message drops only for rounds before `cfg.rcf`, spurious
    /// collision indications only before `cfg.racc`. Completeness
    /// (Property 1) cannot be suppressed by any adversary.
    ///
    /// `out` is cleared first; callers that keep the buffer across
    /// rounds amortize its allocation away.
    pub fn resolve_into<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
        out: &mut Vec<AttributedReception<M>>,
    ) {
        out.clear();
        self.probe.count(|c| {
            c.rounds_total += 1;
            c.rounds_legacy += 1;
            c.grid_queries += intents.len() as u64;
        });
        // This path re-anchors the grid over the round's broadcasters,
        // so any full-topology cache is stale from here on.
        self.cache_ready = false;
        let cfg = &self.cfg;
        self.broadcasters.clear();
        self.broadcaster_pos.clear();
        for (i, intent) in intents.iter().enumerate() {
            if intent.payload.is_some() {
                self.broadcasters.push(i);
                self.broadcaster_pos.push(intent.pos);
            }
        }
        self.grid.rebuild(&self.broadcaster_pos);

        for (j, rx_intent) in intents.iter().enumerate() {
            let j_broadcasting = rx_intent.payload.is_some();
            let mut messages: Vec<(NodeId, M)> = Vec::new();
            let mut lost_within_r1 = false;
            let mut lost_within_r2 = false;

            // The sender observes its own payload (it knows what it
            // sent).
            if let Some(own) = &rx_intent.payload {
                messages.push((rx_intent.node, own.clone()));
            }

            // All broadcasters within R2 of j, in ascending intent
            // order (the adversary consultation order of the reference
            // resolver).
            self.candidates.clear();
            self.grid
                .query_within(rx_intent.pos, cfg.r2, &mut self.candidates);
            self.neighbors.clear();
            self.neighbors.extend(
                self.candidates
                    .iter()
                    .map(|&slot| self.broadcasters[slot as usize])
                    .filter(|&i| i != j),
            );
            self.neighbors.sort_unstable();
            // `interfered` for any specific in-R2 sender i means "some
            // broadcaster k != i, k != j within R2 of j" — with the
            // in-R2 count in hand that is simply `count >= 2`.
            let interfered = self.neighbors.len() >= 2;

            for &i in &self.neighbors {
                let tx = &intents[i];
                let d2 = tx.pos.distance_sq(rx_intent.pos);
                let in_r1 = d2 <= cfg.r1 * cfg.r1;

                let physically_ok = !j_broadcasting && in_r1 && !interfered;
                let delivered = physically_ok
                    && !(round < cfg.rcf
                        && adversary.drop_message(round, tx.node, rx_intent.node, rng));

                if delivered {
                    messages.push((tx.node, tx.payload.as_ref().expect("broadcaster").clone()));
                } else {
                    if in_r1 {
                        lost_within_r1 = true;
                    }
                    lost_within_r2 = true;
                }
            }

            // Collision detector output.
            // Property 1 (completeness): any loss within R1 forces a
            // report. Property 2 (eventual accuracy): from racc
            // onwards, reports only when something within R2 was lost.
            // Before racc the adversary may inject false positives.
            let accurate_report = if cfg.ring_reports {
                lost_within_r2
            } else {
                lost_within_r1
            };
            let mut collision = lost_within_r1
                || accurate_report
                || (round < cfg.racc && adversary.spurious_collision(round, rx_intent.node, rng));
            // Model-violation hook: the E13 necessity ablation may
            // break completeness here. Normal adversaries never do.
            if collision && adversary.suppress_detection(round, rx_intent.node, rng) {
                collision = false;
            }

            out.push(AttributedReception {
                node: rx_intent.node,
                messages,
                collision,
            });
        }
    }

    /// Convenience wrapper over [`Medium::resolve_into`] returning a
    /// fresh vector.
    pub fn resolve<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
    ) -> Vec<AttributedReception<M>> {
        let mut out = Vec::with_capacity(intents.len());
        self.resolve_into(round, intents, adversary, rng, &mut out);
        out
    }

    /// The hot-path resolver: resolves one round through *persistent*
    /// per-node neighborhoods instead of a per-round index rebuild.
    ///
    /// The medium keeps, for every intent slot, the sorted list of
    /// slots within `R2` together with their squared distances. The
    /// caller reports how the topology changed via `delta`:
    ///
    /// * [`TopologyDelta::Unchanged`] — nothing to maintain; the round
    ///   is resolved by scanning cached neighborhoods (zero distance
    ///   computations, zero heap allocations in steady state).
    /// * [`TopologyDelta::Moved`] — the few movers' neighborhoods are
    ///   refreshed with one grid query each and their peers' lists are
    ///   patched surgically; everything else stays cached.
    /// * [`TopologyDelta::Rebuild`] or movers beyond a churn threshold
    ///   — the round falls back to a per-round index over the
    ///   broadcasters (the legacy algorithm, minus its allocations)
    ///   and the cache is invalidated: topology that churns every
    ///   round never pays for a cache it cannot reuse. The first
    ///   stable round afterwards re-anchors the full-topology cache
    ///   (as do few-mover rounds whose cache went stale or whose
    ///   movers left the anchored bounding box).
    ///
    /// Observational equivalence with [`resolve_round_reference`] is
    /// load-bearing exactly as for [`Medium::resolve_into`]: same
    /// receptions, same adversary consultation order, same RNG stream
    /// (asserted by differential proptests) — **provided** `delta` is
    /// truthful. Reporting a moved slot as unchanged silently corrupts
    /// the cached distances.
    ///
    /// `out` is cleared first and holds one entry per intent, in
    /// intent order.
    pub fn resolve_round_cached<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        delta: TopologyDelta<'_>,
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
        out: &mut ReceptionBuffer<M>,
    ) {
        out.clear();
        let n = intents.len();
        let r2 = self.cfg.r2;
        self.probe.count(|c| c.rounds_total += 1);

        // Pick the round's maintenance mode. Participant churn and
        // mass movement go through the per-round broadcaster index
        // (the cache would be rebuilt only to be thrown away again
        // next round); an intact cache takes the surgical or steady
        // path; everything else (first stable round after churn)
        // re-anchors the full-topology cache.
        let stale = !self.cache_ready || self.cached_n != n;
        let (churn, movers): (bool, &[u32]) = match delta {
            TopologyDelta::Rebuild => {
                self.probe.count(|c| c.fallback_participant_churn += 1);
                (true, &[])
            }
            TopologyDelta::Unchanged => (false, &[]),
            TopologyDelta::Moved(slots) => {
                if slots.len() * Self::MOVER_REBUILD_NUM > n {
                    self.probe.count(|c| c.fallback_mass_move += 1);
                    (true, &[])
                } else if stale
                    || slots
                        .iter()
                        .any(|&s| !self.grid.covers(intents[s as usize].pos))
                {
                    // Few movers but no usable cache (or drift past the
                    // anchor): re-anchor now — the next rounds reuse it.
                    (false, &[])
                } else {
                    (false, slots)
                }
            }
        };
        if churn {
            self.resolve_churn_round(round, intents, adversary, rng, out);
            return;
        }

        // Geometry phase (wall-clock only): cache maintenance plus
        // whichever candidate-list construction the round takes.
        let t_geom = self.probe.timer();

        let rebuild = stale || (movers.is_empty() && !matches!(delta, TopologyDelta::Unchanged));
        if rebuild {
            self.probe.count(|c| {
                c.rounds_reanchor += 1;
                c.cache_reanchors += 1;
                if stale {
                    c.fallback_stale_cache += 1;
                } else {
                    c.fallback_anchor_drift += 1;
                }
                c.grid_queries += n as u64;
            });
            self.all_pos.clear();
            self.all_pos.extend(intents.iter().map(|i| i.pos));
            self.grid.rebuild(&self.all_pos);
            for list in &mut self.nbr {
                list.clear();
            }
            if self.nbr.len() < n {
                self.nbr.resize_with(n, Vec::new);
            }
            self.is_mover.clear();
            self.is_mover.resize(n, false);
            self.cached_n = n;
            self.cache_ready = true;
        } else if !movers.is_empty() {
            self.probe.count(|c| {
                c.mover_rounds += 1;
                c.mover_slots += movers.len() as u64;
                c.grid_queries += movers.len() as u64;
            });
            // Phase A: land every move in the grid first, so each
            // refreshed neighborhood below sees this round's true
            // positions (mover–mover pairs included).
            for &m in movers {
                self.grid.move_point(m, intents[m as usize].pos);
                self.is_mover[m as usize] = true;
            }
            // Phase B: refresh each mover's own neighborhood and patch
            // its non-moving peers' lists. Fellow movers are skipped —
            // their own refresh rewrites their list wholesale.
            for &m in movers {
                let mu = m as usize;
                self.fresh.clear();
                self.grid
                    .query_within_d2(intents[mu].pos, r2, &mut self.fresh);
                if let Ok(at) = self.fresh.binary_search_by_key(&m, |&(i, _)| i) {
                    self.fresh.remove(at);
                }
                let mut old = std::mem::take(&mut self.nbr[mu]);
                let (mut a, mut b) = (0, 0);
                while a < old.len() || b < self.fresh.len() {
                    let ka = old.get(a).map(|&(i, _)| i);
                    let kb = self.fresh.get(b).map(|&(i, _)| i);
                    match (ka, kb) {
                        (Some(x), Some(y)) if x == y => {
                            if !self.is_mover[x as usize] {
                                list_update(&mut self.nbr[x as usize], m, self.fresh[b].1);
                            }
                            a += 1;
                            b += 1;
                        }
                        (Some(x), Some(y)) if x < y => {
                            if !self.is_mover[x as usize] {
                                list_remove(&mut self.nbr[x as usize], m);
                            }
                            a += 1;
                        }
                        (Some(x), None) => {
                            if !self.is_mover[x as usize] {
                                list_remove(&mut self.nbr[x as usize], m);
                            }
                            a += 1;
                        }
                        (_, Some(y)) => {
                            if !self.is_mover[y as usize] {
                                list_insert(&mut self.nbr[y as usize], m, self.fresh[b].1);
                            }
                            b += 1;
                        }
                        (None, None) => unreachable!("loop condition"),
                    }
                }
                // Install the fresh list and recycle the old buffer as
                // the next query scratch (steady-state zero-alloc).
                old.clear();
                std::mem::swap(&mut self.fresh, &mut old);
                self.nbr[mu] = old;
            }
            for &m in movers {
                self.is_mover[m as usize] = false;
            }
        }

        self.is_tx.clear();
        self.is_tx
            .extend(intents.iter().map(|i| i.payload.is_some()));
        let broadcasters = self.is_tx.iter().filter(|&&tx| tx).count();

        let cfg = self.cfg;
        // Sparse-broadcast scatter: with few broadcasters it is far
        // cheaper to walk *their* cached neighborhoods (symmetric by
        // construction) and sort the resulting `(receiver,
        // broadcaster)` events than to probe every receiver's list.
        // Needs every list valid, so re-anchor rounds stay on the
        // scan path. Either path yields the identical per-receiver
        // broadcaster subset in ascending order.
        let scatter = !rebuild && broadcasters * Self::SCATTER_MAX_TX_NUM < n;
        self.probe.count(|c| {
            if scatter {
                c.rounds_scatter += 1;
            } else if !rebuild {
                c.rounds_steady += 1;
            }
        });
        if scatter {
            self.events.clear();
            for (i, intent) in intents.iter().enumerate() {
                if intent.payload.is_some() {
                    for &(j, d2) in &self.nbr[i] {
                        self.events.push((u64::from(j) << 32 | i as u64, d2));
                    }
                }
            }
            self.events.sort_unstable_by_key(|&(key, _)| key);
            self.probe.phase_since(Phase::Geometry, t_geom);
            let t_fin = self.probe.timer();
            let mut cursor = 0usize;
            for (j, rx_intent) in intents.iter().enumerate() {
                self.txn.clear();
                while let Some(&(key, d2)) = self.events.get(cursor) {
                    if (key >> 32) != j as u64 {
                        break;
                    }
                    self.txn.push((key as u32, d2));
                    cursor += 1;
                }
                resolve_receiver(
                    &cfg,
                    round,
                    rx_intent,
                    self.is_tx[j],
                    &self.txn,
                    intents,
                    adversary,
                    rng,
                    out,
                );
            }
            self.probe.phase_since(Phase::Finalize, t_fin);
            return;
        }

        // Large rounds with a pool configured: shard the geometry phase
        // (the dominant cost) across row-band tiles, then finalize
        // sequentially in canonical order. Byte-identical to the scan
        // loop below at any worker count.
        if self.shard_applicable(n) {
            let mode = if rebuild {
                ShardMode::RebuildAll
            } else {
                ShardMode::ScanCached
            };
            self.probe.add_sharded_round();
            self.shard_geometry(mode, n);
            self.probe.phase_since(Phase::Geometry, t_geom);
            let t_fin = self.probe.timer();
            self.shard_finalize(mode, round, intents, adversary, rng, out);
            self.probe.phase_since(Phase::Finalize, t_fin);
            return;
        }

        // Sequential scan. Geometry ends here: on re-anchor rounds the
        // per-receiver grid queries are interleaved with resolution, so
        // they land in the finalize bucket (a documented approximation).
        self.probe.phase_since(Phase::Geometry, t_geom);
        let t_fin = self.probe.timer();
        for (j, rx_intent) in intents.iter().enumerate() {
            if rebuild {
                // Re-anchored this round: recompute the neighborhood.
                self.fresh.clear();
                self.grid
                    .query_within_d2(rx_intent.pos, cfg.r2, &mut self.fresh);
                if let Ok(at) = self.fresh.binary_search_by_key(&(j as u32), |&(i, _)| i) {
                    self.fresh.remove(at);
                }
                self.nbr[j].clear();
                self.nbr[j].extend_from_slice(&self.fresh);
            }
            // The broadcasting subset, ascending — the adversary
            // consultation order of the reference resolver.
            self.txn.clear();
            self.txn.extend(
                self.nbr[j]
                    .iter()
                    .copied()
                    .filter(|&(i, _)| self.is_tx[i as usize]),
            );
            resolve_receiver(
                &cfg,
                round,
                rx_intent,
                self.is_tx[j],
                &self.txn,
                intents,
                adversary,
                rng,
                out,
            );
        }
        self.probe.phase_since(Phase::Finalize, t_fin);
    }

    /// One round resolved through a per-round index over the round's
    /// broadcasters — the churn fallback of
    /// [`Medium::resolve_round_cached`]. Same algorithm as the legacy
    /// [`Medium::resolve_into`], but writing SoA output and allocating
    /// nothing in steady state. Invalidates the full-topology cache.
    fn resolve_churn_round<M: Clone>(
        &mut self,
        round: u64,
        intents: &[TxIntent<M>],
        adversary: &mut dyn Adversary,
        rng: &mut StdRng,
        out: &mut ReceptionBuffer<M>,
    ) {
        self.probe.count(|c| {
            c.rounds_churn += 1;
            c.grid_queries += intents.len() as u64;
        });
        let t_geom = self.probe.timer();
        self.cache_ready = false;
        self.broadcasters.clear();
        self.broadcaster_pos.clear();
        for (i, intent) in intents.iter().enumerate() {
            if intent.payload.is_some() {
                self.broadcasters.push(i);
                self.broadcaster_pos.push(intent.pos);
            }
        }
        self.grid.rebuild(&self.broadcaster_pos);

        // Mass-churn rounds shard too: workers query the broadcaster
        // index over row-band tiles of *receiver* positions, which are
        // staged in `all_pos` because workers never touch intents.
        if self.shard_applicable(intents.len()) {
            self.probe.add_sharded_round();
            self.all_pos.clear();
            self.all_pos.extend(intents.iter().map(|i| i.pos));
            self.shard_geometry(ShardMode::ChurnIndex, intents.len());
            self.probe.phase_since(Phase::Geometry, t_geom);
            let t_fin = self.probe.timer();
            self.shard_finalize(ShardMode::ChurnIndex, round, intents, adversary, rng, out);
            self.probe.phase_since(Phase::Finalize, t_fin);
            return;
        }

        // Sequential churn: the per-receiver queries below interleave
        // with resolution, so geometry covers only the index rebuild.
        self.probe.phase_since(Phase::Geometry, t_geom);
        let t_fin = self.probe.timer();
        let cfg = self.cfg;
        for (j, rx_intent) in intents.iter().enumerate() {
            self.fresh.clear();
            self.grid
                .query_within_d2(rx_intent.pos, cfg.r2, &mut self.fresh);
            // Broadcaster slots are in ascending intent order, so the
            // slot-sorted query maps to ascending intent indices.
            self.txn.clear();
            self.txn.extend(
                self.fresh
                    .iter()
                    .map(|&(slot, d2)| (self.broadcasters[slot as usize] as u32, d2))
                    .filter(|&(i, _)| i as usize != j),
            );
            resolve_receiver(
                &cfg,
                round,
                rx_intent,
                rx_intent.payload.is_some(),
                &self.txn,
                intents,
                adversary,
                rng,
                out,
            );
        }
        self.probe.phase_since(Phase::Finalize, t_fin);
    }
}

/// Updates the cached squared distance of `key` in `list`.
fn list_update(list: &mut [(u32, f64)], key: u32, d2: f64) {
    let at = list
        .binary_search_by_key(&key, |&(i, _)| i)
        .expect("cached neighborhood must contain the mover");
    list[at].1 = d2;
}

/// Removes `key` from a sorted neighborhood list.
fn list_remove(list: &mut Vec<(u32, f64)>, key: u32) {
    let at = list
        .binary_search_by_key(&key, |&(i, _)| i)
        .expect("cached neighborhood must contain the departing mover");
    list.remove(at);
}

/// Inserts `(key, d2)` into a sorted neighborhood list.
fn list_insert(list: &mut Vec<(u32, f64)>, key: u32, d2: f64) {
    let at = list
        .binary_search_by_key(&key, |&(i, _)| i)
        .expect_err("cached neighborhood already contains the arriving mover");
    list.insert(at, (key, d2));
}

/// Resolves one receiver given the broadcasting subset of its `R2`
/// neighborhood (`txn`, ascending intent slots with exact squared
/// distances), appending the entry to `out`.
///
/// This is the delivery rule of [`resolve_round_reference`] verbatim —
/// including the short-circuit order of adversary consultations, which
/// the differential tests pin down.
#[allow(clippy::too_many_arguments)]
fn resolve_receiver<M: Clone>(
    cfg: &RadioConfig,
    round: u64,
    rx_intent: &TxIntent<M>,
    j_broadcasting: bool,
    txn: &[(u32, f64)],
    intents: &[TxIntent<M>],
    adversary: &mut dyn Adversary,
    rng: &mut StdRng,
    out: &mut ReceptionBuffer<M>,
) {
    out.begin(rx_intent.node);
    // The sender observes its own payload (it knows what it sent).
    if let Some(own) = &rx_intent.payload {
        out.push_message(rx_intent.node, own.clone());
    }
    // `interfered` for any specific in-R2 sender i means "some
    // broadcaster k != i, k != j within R2 of j" — with the in-R2
    // broadcaster count in hand that is simply `count >= 2`.
    let interfered = txn.len() >= 2;
    let mut lost_within_r1 = false;
    let mut lost_within_r2 = false;
    for &(i, d2) in txn {
        let tx = &intents[i as usize];
        let in_r1 = d2 <= cfg.r1 * cfg.r1;
        let physically_ok = !j_broadcasting && in_r1 && !interfered;
        let delivered = physically_ok
            && !(round < cfg.rcf && adversary.drop_message(round, tx.node, rx_intent.node, rng));
        if delivered {
            out.push_message(tx.node, tx.payload.as_ref().expect("broadcaster").clone());
        } else {
            if in_r1 {
                lost_within_r1 = true;
            }
            lost_within_r2 = true;
        }
    }
    // Collision detector output: Property 1 (completeness) forces a
    // report on any R1 loss; Property 2 (eventual accuracy) applies
    // from racc onwards; before racc the adversary may inject false
    // positives; the E13 necessity ablation may suppress reports.
    let accurate_report = if cfg.ring_reports {
        lost_within_r2
    } else {
        lost_within_r1
    };
    let mut collision = lost_within_r1
        || accurate_report
        || (round < cfg.racc && adversary.spurious_collision(round, rx_intent.node, rng));
    if collision && adversary.suppress_detection(round, rx_intent.node, rng) {
        collision = false;
    }
    out.finish(collision);
}

/// Resolves one slotted round of the channel through a fresh
/// [`Medium`] (grid-indexed path).
///
/// One-shot convenience for tests and tools; the engine keeps a
/// long-lived [`Medium`] instead so buffers amortize across rounds.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`RadioConfig::validate`]).
pub fn resolve_round<M: Clone>(
    round: u64,
    cfg: &RadioConfig,
    intents: &[TxIntent<M>],
    adversary: &mut dyn Adversary,
    rng: &mut StdRng,
) -> Vec<AttributedReception<M>> {
    Medium::new(*cfg).resolve(round, intents, adversary, rng)
}

/// The naive O(receivers × broadcasters × nodes) resolver, kept as the
/// executable specification of the delivery rule.
///
/// [`Medium`] must be observationally identical to this function —
/// same receptions, same adversary consultation order, same RNG
/// stream. Differential tests (`tests/substrate_properties.rs`) and
/// the `radio_scale` experiment in `vi-bench` hold the two against
/// each other. Do not optimize this function: its value is being
/// obviously correct.
pub fn resolve_round_reference<M: Clone>(
    round: u64,
    cfg: &RadioConfig,
    intents: &[TxIntent<M>],
    adversary: &mut dyn Adversary,
    rng: &mut StdRng,
) -> Vec<AttributedReception<M>> {
    let broadcasters: Vec<usize> = (0..intents.len())
        .filter(|&i| intents[i].payload.is_some())
        .collect();

    let mut out = Vec::with_capacity(intents.len());
    for (j, rx_intent) in intents.iter().enumerate() {
        let j_broadcasting = rx_intent.payload.is_some();
        let mut messages: Vec<(NodeId, M)> = Vec::new();
        let mut lost_within_r1 = false;
        let mut lost_within_r2 = false;

        // The sender observes its own payload (it knows what it sent).
        if let Some(own) = &rx_intent.payload {
            messages.push((rx_intent.node, own.clone()));
        }

        for &i in &broadcasters {
            if i == j {
                continue;
            }
            let tx = &intents[i];
            let d2 = tx.pos.distance_sq(rx_intent.pos);
            let in_r1 = d2 <= cfg.r1 * cfg.r1;
            let in_r2 = d2 <= cfg.r2 * cfg.r2;
            if !in_r2 {
                continue; // out of both radii: physically irrelevant to j
            }

            // Physical deliverability: listener, in broadcast range, and
            // no *other* broadcaster interferes within R2 of j.
            let interfered = broadcasters.iter().any(|&k| {
                k != i && k != j && intents[k].pos.distance_sq(rx_intent.pos) <= cfg.r2 * cfg.r2
            });
            let physically_ok = !j_broadcasting && in_r1 && !interfered;

            let delivered = physically_ok
                && !(round < cfg.rcf
                    && adversary.drop_message(round, tx.node, rx_intent.node, rng));

            if delivered {
                messages.push((tx.node, tx.payload.as_ref().expect("broadcaster").clone()));
            } else {
                if in_r1 {
                    lost_within_r1 = true;
                }
                lost_within_r2 = true;
            }
        }

        // Collision detector output.
        // Property 1 (completeness): any loss within R1 forces a report.
        // Property 2 (eventual accuracy): from racc onwards, reports only
        // when something within R2 was lost. Before racc the adversary may
        // inject false positives.
        let accurate_report = if cfg.ring_reports {
            lost_within_r2
        } else {
            lost_within_r1
        };
        let mut collision = lost_within_r1
            || accurate_report
            || (round < cfg.racc && adversary.spurious_collision(round, rx_intent.node, rng));
        // Model-violation hook: the E13 necessity ablation may break
        // completeness here. Normal adversaries never do.
        if collision && adversary.suppress_detection(round, rx_intent.node, rng) {
            collision = false;
        }

        out.push(AttributedReception {
            node: rx_intent.node,
            messages,
            collision,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoAdversary, ScriptedAdversary};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    fn cfg() -> RadioConfig {
        RadioConfig::reliable(10.0, 20.0)
    }

    fn intent<M>(id: usize, x: f64, payload: Option<M>) -> TxIntent<M> {
        TxIntent {
            node: NodeId::from(id),
            pos: Point::new(x, 0.0),
            payload,
        }
    }

    /// One broadcaster, one in-range listener: delivered, no collision.
    #[test]
    fn basic_delivery() {
        let intents = vec![intent(0, 0.0, Some(7u64)), intent(1, 5.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert_eq!(out[1].messages, vec![(NodeId::from(0), 7)]);
        assert!(!out[1].collision);
        // Sender observes its own message and no collision.
        assert_eq!(out[0].messages, vec![(NodeId::from(0), 7)]);
        assert!(!out[0].collision);
    }

    /// Outside R1 (but inside R2): not delivered; with ring reports the
    /// listener's detector fires (accurate: a message within R2 was lost).
    #[test]
    fn gray_ring_loss_reports() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 15.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision, "ring loss should be reported by default");

        let quiet = cfg().without_ring_reports();
        let out = resolve_round(0, &quiet, &intents, &mut NoAdversary, &mut rng());
        assert!(!out[1].collision, "ring reports disabled");
    }

    /// Outside R2 entirely: silent round.
    #[test]
    fn out_of_range_is_silent() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 25.0, None)];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].is_silent());
    }

    /// Two broadcasters within R2 of a listener: both messages destroyed,
    /// collision reported (completeness).
    #[test]
    fn interference_destroys_both() {
        let intents = vec![
            intent(0, 0.0, Some(1u64)),
            intent(1, 8.0, Some(2u64)),
            intent(2, 4.0, None),
        ];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[2].messages.is_empty());
        assert!(out[2].collision);
    }

    /// Interferer outside R1 but inside R2 of the listener still
    /// destroys reception (quasi-unit-disk).
    #[test]
    fn far_interferer_still_interferes() {
        let intents = vec![
            intent(0, 0.0, Some(1u64)),
            intent(2, 5.0, None),
            intent(1, 22.0, Some(2u64)), // 17m from listener: in (R1, R2]
        ];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision);
    }

    /// Half-duplex: concurrent broadcasters within R1 miss each other
    /// and completeness forces both detectors to fire.
    #[test]
    fn concurrent_broadcasters_detect_collision() {
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, Some(2u64))];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        for rx in &out {
            assert_eq!(rx.messages.len(), 1, "only own message observed");
            assert!(rx.collision, "missed the other broadcaster");
        }
    }

    /// A lone broadcaster hears nothing but its own message and no
    /// collision.
    #[test]
    fn lone_broadcaster_clean() {
        let intents = vec![intent(0, 0.0, Some(1u64))];
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert_eq!(out[0].messages.len(), 1);
        assert!(!out[0].collision);
    }

    /// Before rcf the adversary may drop a deliverable message; the
    /// listener's detector must then fire (completeness holds even
    /// pre-stabilization).
    #[test]
    fn adversarial_drop_forces_detection() {
        let mut adv = ScriptedAdversary::new();
        adv.drop(3, NodeId::from(0), NodeId::from(1));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, None)];
        let out = resolve_round(3, &cfg, &intents, &mut adv, &mut rng());
        assert!(out[1].messages.is_empty());
        assert!(out[1].collision, "completeness: lost R1 message detected");
    }

    /// After rcf the same script is impotent: the channel no longer
    /// consults the adversary for drops.
    #[test]
    fn post_rcf_drops_are_ignored() {
        let mut adv = ScriptedAdversary::new();
        adv.drop(100, NodeId::from(0), NodeId::from(1));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent(0, 0.0, Some(1u64)), intent(1, 5.0, None)];
        let out = resolve_round(100, &cfg, &intents, &mut adv, &mut rng());
        assert_eq!(out[1].messages.len(), 1);
        assert!(!out[1].collision);
    }

    /// Spurious indications are honoured before racc and suppressed
    /// after.
    #[test]
    fn spurious_collisions_respect_racc() {
        let mut adv = ScriptedAdversary::new();
        adv.inject_collision(3, NodeId::from(0));
        adv.inject_collision(100, NodeId::from(0));
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 100);
        let intents = vec![intent::<u64>(0, 0.0, None)];
        let out = resolve_round(3, &cfg, &intents, &mut adv, &mut rng());
        assert!(out[0].collision, "false positive allowed before racc");
        let out = resolve_round(100, &cfg, &intents, &mut adv, &mut rng());
        assert!(!out[0].collision, "accuracy: no false positives from racc");
    }

    /// Deliveries are reported in sender order, deterministically.
    #[test]
    fn deterministic_sender_order() {
        let intents = vec![
            intent(2, 1.0, Some(30u64)),
            intent(0, 2.0, Some(10u64)),
            intent(1, 50.0, None), // isolated listener, hears nothing
            intent(3, 3.0, None),
        ];
        // Node 3 is within R2 of both broadcasters: interference.
        let out = resolve_round(0, &cfg(), &intents, &mut NoAdversary, &mut rng());
        assert!(out[3].messages.is_empty() && out[3].collision);
        assert!(out[2].is_silent());
    }
}
