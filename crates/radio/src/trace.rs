//! Execution traces and aggregate channel statistics.
//!
//! Traces record what physically happened on the channel each round;
//! the specification checkers in `vi-core` and the experiment harness
//! in `vi-bench` consume them. Statistics aggregate the quantities the
//! paper's efficiency claims are about: rounds, broadcasts, message
//! sizes, and collision reports.

use crate::engine::NodeId;
use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// Everything that happened on the channel in one round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// The round number.
    pub round: u64,
    /// Position of every participating node.
    pub positions: Vec<(NodeId, Point)>,
    /// `(broadcaster, wire size in bytes)` for every transmission.
    pub broadcasts: Vec<(NodeId, usize)>,
    /// `(sender, receiver)` for every successful delivery to another
    /// node (loopback observations are not recorded).
    pub deliveries: Vec<(NodeId, NodeId)>,
    /// Nodes whose collision detector reported `±` this round.
    pub collisions: Vec<NodeId>,
}

/// A full execution trace: one [`RoundRecord`] per simulated round.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Records in round order.
    pub rounds: Vec<RoundRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Iterates over records for rounds in `[from, to)`.
    pub fn window(&self, from: u64, to: u64) -> impl Iterator<Item = &RoundRecord> {
        self.rounds
            .iter()
            .filter(move |r| r.round >= from && r.round < to)
    }
}

/// Aggregate channel statistics for an execution.
///
/// These are the raw measurements behind experiments E2, E3 and E7:
/// Theorem 14 claims constant rounds per agreement instance and
/// constant message size, so `max_message_bytes` must not grow with
/// execution length, and rounds-per-decision must not grow with `n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Rounds simulated.
    pub rounds: u64,
    /// Total broadcast attempts.
    pub broadcasts: u64,
    /// Total successful deliveries to *other* nodes.
    pub deliveries: u64,
    /// Total collision indications reported by detectors.
    pub collision_reports: u64,
    /// Sum of wire sizes of all broadcast messages, in bytes.
    pub total_bytes: u64,
    /// Largest single message broadcast, in bytes.
    pub max_message_bytes: usize,
}

impl ChannelStats {
    /// Mean broadcast size in bytes, or 0 if nothing was broadcast.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.broadcasts == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.broadcasts as f64
        }
    }

    /// Delivery ratio: deliveries per broadcast (can exceed 1 with
    /// multiple receivers).
    pub fn delivery_ratio(&self) -> f64 {
        if self.broadcasts == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.broadcasts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_means_handle_empty() {
        let s = ChannelStats::default();
        assert_eq!(s.mean_message_bytes(), 0.0);
        assert_eq!(s.delivery_ratio(), 0.0);
    }

    #[test]
    fn stats_means() {
        let s = ChannelStats {
            rounds: 10,
            broadcasts: 4,
            deliveries: 6,
            collision_reports: 1,
            total_bytes: 100,
            max_message_bytes: 40,
        };
        assert_eq!(s.mean_message_bytes(), 25.0);
        assert_eq!(s.delivery_ratio(), 1.5);
    }

    #[test]
    fn trace_window_filters() {
        let mut t = Trace::new();
        for round in 0..10 {
            t.rounds.push(RoundRecord {
                round,
                positions: vec![],
                broadcasts: vec![],
                deliveries: vec![],
                collisions: vec![],
            });
        }
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        let w: Vec<u64> = t.window(3, 6).map(|r| r.round).collect();
        assert_eq!(w, vec![3, 4, 5]);
    }
}
