//! Radio model parameters.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Parameters of the quasi-unit-disk radio model (Section 2 of the
/// paper).
///
/// * `r1` — the broadcast radius: two nodes within `r1` of each other
///   are able to communicate.
/// * `r2` — the interference radius: a broadcaster within `r2` of a
///   receiver interferes with any other reception (`r2 >= r1`).
/// * `rcf` — the *collision-freedom* stabilization round: from `rcf`
///   onwards, every message broadcast within `r1` of a listening,
///   interference-free receiver is delivered. Before `rcf`, an
///   [`Adversary`](crate::Adversary) may drop any message.
/// * `racc` — the *detector accuracy* stabilization round: from `racc`
///   onwards the collision detector reports a collision only if some
///   message broadcast within `r2` was actually lost (Property 2).
///   Before `racc` the adversary may inject spurious collision
///   indications.
/// * `ring_reports` — whether, after `racc`, the detector also reports
///   losses from broadcasters in the "gray ring" `(r1, r2]`. Both
///   settings satisfy Properties 1–2; `true` models a conservative
///   carrier-sensing detector and is the default.
///
/// Eventual properties in the paper hold "from some point onwards" as a
/// formal convention; the simulator makes the stabilization points
/// explicit parameters so experiments can sweep them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Broadcast radius `R1` in meters.
    pub r1: f64,
    /// Interference radius `R2` in meters (`r2 >= r1`).
    pub r2: f64,
    /// First round of collision freedom (the paper's `rcf`).
    pub rcf: u64,
    /// First round of collision-detector accuracy (the paper's `racc`).
    pub racc: u64,
    /// Whether the accurate detector also reports gray-ring losses.
    pub ring_reports: bool,
}

impl RadioConfig {
    /// A network that is well behaved from round 0: no adversarial
    /// loss and an accurate detector throughout.
    ///
    /// # Panics
    ///
    /// Panics if the radii are invalid (see [`RadioConfig::validate`]).
    pub fn reliable(r1: f64, r2: f64) -> Self {
        let cfg = RadioConfig {
            r1,
            r2,
            rcf: 0,
            racc: 0,
            ring_reports: true,
        };
        cfg.validate().expect("invalid radio config");
        cfg
    }

    /// A network that misbehaves (arbitrary loss, inaccurate
    /// detectors) until round `stabilize_at`, then is well behaved.
    ///
    /// # Panics
    ///
    /// Panics if the radii are invalid (see [`RadioConfig::validate`]).
    pub fn stabilizing(r1: f64, r2: f64, stabilize_at: u64) -> Self {
        let cfg = RadioConfig {
            r1,
            r2,
            rcf: stabilize_at,
            racc: stabilize_at,
            ring_reports: true,
        };
        cfg.validate().expect("invalid radio config");
        cfg
    }

    /// Sets distinct stabilization points for collision freedom and
    /// detector accuracy.
    pub fn with_stabilization(mut self, rcf: u64, racc: u64) -> Self {
        self.rcf = rcf;
        self.racc = racc;
        self
    }

    /// Disables gray-ring collision reports after `racc`.
    pub fn without_ring_reports(mut self) -> Self {
        self.ring_reports = false;
        self
    }

    /// Checks the model constraints: `0 < r1 <= r2`, both finite.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.r1.is_finite() || !self.r2.is_finite() {
            return Err(ConfigError::NonFiniteRadius);
        }
        if self.r1 <= 0.0 {
            return Err(ConfigError::NonPositiveBroadcastRadius(self.r1));
        }
        if self.r2 < self.r1 {
            return Err(ConfigError::InterferenceSmallerThanBroadcast {
                r1: self.r1,
                r2: self.r2,
            });
        }
        Ok(())
    }
}

/// Error returned when a [`RadioConfig`] violates the model
/// constraints.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A radius was NaN or infinite.
    NonFiniteRadius,
    /// The broadcast radius must be strictly positive.
    NonPositiveBroadcastRadius(f64),
    /// The interference radius must be at least the broadcast radius.
    InterferenceSmallerThanBroadcast {
        /// Broadcast radius supplied.
        r1: f64,
        /// Interference radius supplied.
        r2: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonFiniteRadius => write!(f, "radio radius must be finite"),
            ConfigError::NonPositiveBroadcastRadius(r1) => {
                write!(f, "broadcast radius must be positive (got {r1})")
            }
            ConfigError::InterferenceSmallerThanBroadcast { r1, r2 } => write!(
                f,
                "interference radius {r2} must be at least broadcast radius {r1}"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_config_is_valid() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        assert_eq!(cfg.rcf, 0);
        assert_eq!(cfg.racc, 0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rejects_inverted_radii() {
        let cfg = RadioConfig {
            r1: 20.0,
            r2: 10.0,
            rcf: 0,
            racc: 0,
            ring_reports: true,
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::InterferenceSmallerThanBroadcast { r1: 20.0, r2: 10.0 })
        );
    }

    #[test]
    fn rejects_zero_radius() {
        let cfg = RadioConfig {
            r1: 0.0,
            r2: 1.0,
            rcf: 0,
            racc: 0,
            ring_reports: true,
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NonPositiveBroadcastRadius(_))
        ));
    }

    #[test]
    fn rejects_nan_radius() {
        let cfg = RadioConfig {
            r1: f64::NAN,
            r2: 1.0,
            rcf: 0,
            racc: 0,
            ring_reports: true,
        };
        assert_eq!(cfg.validate(), Err(ConfigError::NonFiniteRadius));
    }

    #[test]
    fn stabilizing_sets_both_points() {
        let cfg = RadioConfig::stabilizing(5.0, 10.0, 42);
        assert_eq!(cfg.rcf, 42);
        assert_eq!(cfg.racc, 42);
        let cfg = cfg.with_stabilization(10, 20);
        assert_eq!((cfg.rcf, cfg.racc), (10, 20));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let msg = ConfigError::InterferenceSmallerThanBroadcast { r1: 2.0, r2: 1.0 }.to_string();
        assert!(msg.contains("interference radius"));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
