//! A persistent broadcast worker pool for intra-round parallelism.
//!
//! [`WorkerPool`] spawns `workers - 1` OS threads once and reuses them
//! for every [`WorkerPool::broadcast`]: the calling thread acts as
//! worker 0 and the spawned threads as workers `1..workers`. A
//! broadcast hands every worker the same *borrowed* job closure and
//! blocks until all of them have returned, so the closure may freely
//! borrow caller-local state — scoped-thread semantics without paying
//! a thread spawn (or any heap allocation) per call.
//!
//! The pool exists for the tile-sharded round resolver
//! ([`Medium`](crate::channel::Medium)): a round is resolved thousands
//! of times per experiment, so per-round `std::thread::scope` spawns
//! would dwarf the work being parallelized and allocate every round,
//! while waking parked threads costs two condvar transitions per
//! worker and **zero heap allocations** — the steady-state guarantee
//! of `tests/zero_alloc.rs` holds with sharding enabled.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime-erased fat pointer to the current broadcast's job.
///
/// Soundness: [`WorkerPool::broadcast`] publishes the pointer, then
/// blocks until every worker has finished its invocation (`remaining
/// == 0`), so the pointee strictly outlives every dereference.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from any thread is
// fine) and `broadcast` keeps the borrow alive while any worker holds
// the pointer — see `JobPtr` docs.
unsafe impl Send for JobPtr {}

/// Pool state behind the mutex.
struct PoolState {
    /// Bumped once per broadcast; each worker runs one job per epoch.
    epoch: u64,
    /// The current epoch's job (present iff an epoch is in flight).
    job: Option<JobPtr>,
    /// Spawned workers that have not yet finished the current epoch.
    remaining: usize,
    /// Some worker's job invocation panicked this epoch.
    panicked: bool,
    /// The pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for the next epoch.
    work: Condvar,
    /// The broadcaster parks here waiting for `remaining == 0`.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads driven by
/// [`WorkerPool::broadcast`]. See the [module docs](self).
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool of `workers` workers (spawning `workers - 1`
    /// threads; the caller is always worker 0).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0 or a worker thread cannot be spawned.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let threads = (1..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vi-shard-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Total worker count (spawned threads plus the calling thread).
    pub fn workers(&self) -> usize {
        self.threads.len() + 1
    }

    /// Runs `job(w)` once for every worker index `w` in `0..workers`,
    /// concurrently, and returns when all invocations have finished.
    /// The calling thread executes `job(0)` itself.
    ///
    /// The job is borrowed for the duration of the call only — it may
    /// capture references to caller-local state. Disjointness of
    /// per-worker writes is the *caller's* contract (typically: worker
    /// `w` writes only slot `w` of some shared scratch).
    ///
    /// # Panics
    ///
    /// Panics if any invocation panicked (after every worker has
    /// quiesced — the pool itself survives and stays usable).
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.threads.is_empty() {
            job(0);
            return;
        }
        // SAFETY (lifetime erasure): this function does not return —
        // and therefore `job`'s borrow does not end — until every
        // worker has decremented `remaining`, so no worker dereferences
        // the pointer after the pointee is gone.
        let erased = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut st = self.shared.state.lock().expect("pool state");
            debug_assert_eq!(st.remaining, 0, "overlapping broadcasts");
            st.job = Some(erased);
            st.remaining = self.threads.len();
            st.panicked = false;
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        // The caller is worker 0. Its panic must still wait for the
        // other workers to quiesce (their job borrows would otherwise
        // outlive the unwinding frame).
        let own = catch_unwind(AssertUnwindSafe(|| job(0)));
        let workers_panicked = {
            let mut st = self.shared.state.lock().expect("pool state");
            while st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool state");
            }
            st.job = None;
            st.panicked
        };
        match own {
            Err(payload) => resume_unwind(payload),
            Ok(()) if workers_panicked => {
                panic!("a pool worker panicked during broadcast")
            }
            Ok(()) => {}
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

/// The spawned workers' park-run-report loop.
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("epoch bumped without a job");
                }
                st = shared.work.wait(st).expect("pool state");
            }
        };
        // SAFETY: `broadcast` keeps the job alive until `remaining`
        // hits 0, which this worker only signals below.
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) })).is_ok();
        let mut st = shared.state.lock().expect("pool state");
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_and_reuses_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let weights = [1usize, 2, 3, 4];
        for round in 1..=5usize {
            // The job borrows stack-local state — scoped semantics.
            pool.broadcast(&|w| {
                hits[w].fetch_add(weights[w], Ordering::Relaxed);
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), weights[w] * round, "worker {w}");
            }
        }
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let seen = AtomicUsize::new(usize::MAX);
        pool.broadcast(&|w| {
            seen.store(w, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0, "caller is worker 0");
    }

    #[test]
    fn worker_panics_propagate_and_the_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 2 {
                    panic!("injected worker failure");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the broadcaster");
        // The epoch machinery must have fully quiesced: the next
        // broadcast runs on every worker as if nothing happened.
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panics_wait_for_worker_quiescence() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 0 {
                    panic!("injected caller failure");
                }
            });
        }));
        assert!(result.is_err());
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            count.load(Ordering::Relaxed),
            2,
            "pool usable after caller panic"
        );
    }

    /// Caller panic while the spawned workers are *still running*: the
    /// unwinding broadcast frame must block until they quiesce (their
    /// job borrows point into it), and the pool must come back usable.
    #[test]
    fn caller_panic_waits_out_slow_workers_then_pool_is_reusable() {
        let pool = WorkerPool::new(3);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 0 {
                    panic!("caller fails immediately");
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "caller panic must propagate");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            2,
            "broadcast returned before the slow workers quiesced"
        );
        let count = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3, "pool reusable");
    }

    /// After a propagated worker panic, dropping the pool must join
    /// every thread promptly — no hang on a worker stuck in a dead
    /// epoch, no double panic.
    #[test]
    fn drop_joins_cleanly_after_propagated_panic() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w != 0 {
                    panic!("every spawned worker fails");
                }
            });
        }));
        assert!(result.is_err());
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            drop(pool);
            tx.send(()).expect("report drop completion");
        });
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("Drop must join workers after a propagated panic");
    }
}
