//! Planar geometry primitives used by the simulator.
//!
//! The paper's model places every node at a location in the plane; the
//! quasi-unit-disk channel and the virtual-node regions are all defined
//! in terms of Euclidean distance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A location in the plane, in meters.
///
/// ```
/// use vi_radio::geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper than
    /// [`Point::distance`]; use for comparisons).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` if `other` lies within `radius` of `self`
    /// (inclusive).
    pub fn within(self, other: Point, radius: f64) -> bool {
        self.distance_sq(other) <= radius * radius
    }

    /// Linear interpolation from `self` towards `target` by `t ∈ [0,1]`.
    pub fn lerp(self, target: Point, t: f64) -> Point {
        Point::new(
            self.x + (target.x - self.x) * t,
            self.y + (target.y - self.y) * t,
        )
    }

    /// Moves from `self` towards `target` by at most `max_step`,
    /// stopping exactly at `target` if it is closer than `max_step`.
    ///
    /// This is the primitive by which mobility models enforce the
    /// paper's bounded velocity `vmax` (one round = one time slot, so a
    /// per-round step bound is a velocity bound).
    pub fn step_towards(self, target: Point, max_step: f64) -> Point {
        let d = self.distance(target);
        if d <= max_step || d == 0.0 {
            target
        } else {
            self.lerp(target, max_step / d)
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used to bound mobility models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (inclusive).
    pub min: Point,
    /// Maximum corner (inclusive).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise `<= max`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Rect min must be <= max (got min={min}, max={max})"
        );
        Rect { min, max }
    }

    /// A square of side `side` anchored at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Returns `true` if `p` lies inside the rectangle (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Center of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// A uniform-grid spatial index over a set of points, queried for "all
/// points within `radius` of here".
///
/// The channel [`Medium`](crate::channel::Medium) keeps one of these
/// over node positions: with cell size `R2`, a range query for an
/// interference radius touches at most a 3×3 block of cells, turning
/// the naive all-pairs scan into a near-linear sweep.
///
/// Internally a bucket per cell (each bucket sorted by point index).
/// The grid supports two maintenance regimes:
///
/// * [`SpatialGrid::rebuild`] reindexes a whole point set, recomputing
///   the geometry (origin, cell size, dimensions) from the data. All
///   buffers are reused, so steady-state rebuilds allocate nothing
///   once capacities have grown to the working-set size.
/// * [`SpatialGrid::move_point`] / [`SpatialGrid::insert`] /
///   [`SpatialGrid::remove`] update the index incrementally under the
///   geometry *anchored* by the last rebuild. Points that drift outside
///   the anchored bounding box are clamped into edge cells — queries
///   stay **correct** (every candidate is distance-filtered), only the
///   edge buckets grow; callers can consult [`SpatialGrid::covers`]
///   and trigger a rebuild when drift degrades the anchor.
///
/// Queries return indices in **ascending index order** regardless of
/// maintenance history, so an incrementally-updated grid is
/// query-for-query byte-identical to one rebuilt from scratch over the
/// same points (a property the grid proptests assert).
#[derive(Clone, Debug, Default)]
pub struct SpatialGrid {
    /// Nominal cell size requested at construction.
    cell: f64,
    /// Cell size actually used by the last rebuild (the nominal size,
    /// possibly coarsened to respect [`Self::MAX_CELLS_PER_AXIS`]).
    effective_cell: f64,
    origin: Point,
    /// Maximum corner of the anchored bounding box (see
    /// [`SpatialGrid::covers`]).
    anchor_max: Point,
    cols: usize,
    rows: usize,
    /// Point indices bucketed by cell, each bucket sorted ascending.
    cells: Vec<Vec<u32>>,
    /// Copy of the indexed positions (for distance filtering).
    positions: Vec<Point>,
}

impl SpatialGrid {
    /// Upper bound on cells per axis; beyond this the effective cell
    /// size is coarsened so sparse, far-flung populations cannot make
    /// the grid allocate quadratically in the coordinate spread.
    const MAX_CELLS_PER_AXIS: usize = 1024;

    /// Creates an empty grid with the given nominal cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite.
    pub fn new(cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell size must be positive and finite (got {cell})"
        );
        SpatialGrid {
            cell,
            ..SpatialGrid::default()
        }
    }

    /// Number of points currently indexed.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The current position of point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn position(&self, idx: u32) -> Point {
        self.positions[idx as usize]
    }

    /// Number of bucket rows in the anchored geometry (0 while the
    /// grid is empty). The tile-sharded resolver partitions receivers
    /// into contiguous bands of these rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bucket columns in the anchored geometry (0 while the
    /// grid is empty).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bucket row `p` falls into under the anchored geometry,
    /// clamped into `0..rows` exactly like the internal cell
    /// computation — points outside the anchored bounding box land in
    /// the nearest edge row, so the answer is a pure function of `p`
    /// and the anchor (any two calls agree, which is what makes row
    /// bands a sound tile partition for the sharded resolver).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty (`rows() == 0`).
    pub fn row_of(&self, p: Point) -> usize {
        (((p.y - self.origin.y) / self.effective_cell) as usize).min(self.rows - 1)
    }

    /// `true` if `p` lies inside the bounding box the geometry was
    /// anchored to at the last rebuild. Points outside are still
    /// indexed correctly (clamped into edge cells); this is purely a
    /// performance hint for deciding when to re-anchor.
    pub fn covers(&self, p: Point) -> bool {
        self.cols > 0
            && p.x >= self.origin.x
            && p.y >= self.origin.y
            && p.x <= self.anchor_max.x
            && p.y <= self.anchor_max.y
    }

    /// Reindexes `points`, recomputing the anchored geometry and
    /// reusing all internal buffers.
    pub fn rebuild(&mut self, points: &[Point]) {
        self.positions.clear();
        self.positions.extend_from_slice(points);
        self.reindex();
    }

    /// Recomputes geometry and buckets from `self.positions`.
    fn reindex(&mut self) {
        if self.positions.is_empty() {
            self.cols = 0;
            self.rows = 0;
            return;
        }

        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in &self.positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        self.origin = Point::new(min_x, min_y);
        self.anchor_max = Point::new(max_x, max_y);
        let span_x = (max_x - min_x).max(0.0);
        let span_y = (max_y - min_y).max(0.0);
        let max_axis = Self::MAX_CELLS_PER_AXIS as f64;
        let mut effective_cell = self.cell.max(span_x / max_axis).max(span_y / max_axis);
        // Rebuild cost is O(cells), so also cap the cell count relative
        // to the population: a few far-flung points must not make every
        // round re-clear a huge, almost-empty grid.
        let cell_budget = (16 * self.positions.len().max(16)) as f64;
        let cells_at = |cell: f64| ((span_x / cell) + 1.0) * ((span_y / cell) + 1.0);
        if cells_at(effective_cell) > cell_budget {
            effective_cell *= (cells_at(effective_cell) / cell_budget).sqrt();
        }
        self.cols = (span_x / effective_cell) as usize + 1;
        self.rows = (span_y / effective_cell) as usize + 1;
        self.effective_cell = effective_cell;
        let cells = self.cols * self.rows;

        if self.cells.len() < cells {
            self.cells.resize_with(cells, Vec::new);
        }
        // Clear the whole active range (stale buckets from an earlier,
        // larger geometry must never leak into queries).
        for bucket in &mut self.cells[..cells] {
            bucket.clear();
        }
        for i in 0..self.positions.len() {
            let c = self.cell_of(self.positions[i], effective_cell);
            // Indices arrive ascending, so pushing keeps buckets sorted.
            self.cells[c].push(i as u32);
        }
    }

    /// Moves point `idx` to `to`, updating only the affected buckets.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn move_point(&mut self, idx: u32, to: Point) {
        let from = self.positions[idx as usize];
        self.positions[idx as usize] = to;
        let cf = self.cell_of(from, self.effective_cell);
        let ct = self.cell_of(to, self.effective_cell);
        if cf != ct {
            Self::bucket_remove(&mut self.cells[cf], idx);
            Self::bucket_insert(&mut self.cells[ct], idx);
        }
    }

    /// Appends a new point under the current anchored geometry and
    /// returns its index (`len - 1`). The first insert into an empty
    /// grid anchors the geometry to the point.
    pub fn insert(&mut self, p: Point) -> u32 {
        let idx = self.positions.len() as u32;
        self.positions.push(p);
        if self.cols == 0 {
            self.reindex();
        } else {
            let c = self.cell_of(p, self.effective_cell);
            // `idx` is the largest index, so a push keeps the bucket
            // sorted.
            self.cells[c].push(idx);
        }
        idx
    }

    /// Removes point `idx` with swap-remove semantics: the point with
    /// the largest index takes over index `idx` (mirror bookkeeping in
    /// callers must do the same relabeling).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove(&mut self, idx: u32) {
        let last = (self.positions.len() - 1) as u32;
        let c = self.cell_of(self.positions[idx as usize], self.effective_cell);
        Self::bucket_remove(&mut self.cells[c], idx);
        if idx != last {
            let cl = self.cell_of(self.positions[last as usize], self.effective_cell);
            Self::bucket_remove(&mut self.cells[cl], last);
            Self::bucket_insert(&mut self.cells[cl], idx);
        }
        self.positions.swap_remove(idx as usize);
    }

    fn bucket_remove(bucket: &mut Vec<u32>, idx: u32) {
        let at = bucket
            .binary_search(&idx)
            .expect("grid bucket must contain the point");
        bucket.remove(at);
    }

    fn bucket_insert(bucket: &mut Vec<u32>, idx: u32) {
        let at = bucket
            .binary_search(&idx)
            .expect_err("grid bucket already contains the point");
        bucket.insert(at, idx);
    }

    fn cell_of(&self, p: Point, cell: f64) -> usize {
        let cx = (((p.x - self.origin.x) / cell) as usize).min(self.cols - 1);
        let cy = (((p.y - self.origin.y) / cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Appends to `out` the index of every point within `radius` of
    /// `center` (inclusive, matching [`Point::within`]), in **ascending
    /// index order** — the canonical order, independent of how the grid
    /// was maintained.
    pub fn query_within(&self, center: Point, radius: f64, out: &mut Vec<u32>) {
        let base = out.len();
        self.for_each_candidate(center, radius, |idx, _| out.push(idx));
        out[base..].sort_unstable();
    }

    /// Like [`SpatialGrid::query_within`], but also reports the squared
    /// distance from `center` to each hit (ascending index order).
    pub fn query_within_d2(&self, center: Point, radius: f64, out: &mut Vec<(u32, f64)>) {
        let base = out.len();
        self.for_each_candidate(center, radius, |idx, d2| out.push((idx, d2)));
        out[base..].sort_unstable_by_key(|&(idx, _)| idx);
    }

    /// Visits every in-radius point as `(index, squared distance)`, in
    /// cell order.
    fn for_each_candidate(&self, center: Point, radius: f64, mut visit: impl FnMut(u32, f64)) {
        if self.positions.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let cell = self.effective_cell;
        let lo_x = ((center.x - radius - self.origin.x) / cell).floor();
        let hi_x = ((center.x + radius - self.origin.x) / cell).floor();
        let lo_y = ((center.y - radius - self.origin.y) / cell).floor();
        let hi_y = ((center.y + radius - self.origin.y) / cell).floor();
        let clamp = |v: f64, hi: usize| (v.max(0.0) as usize).min(hi - 1);
        let (cx0, cx1) = (clamp(lo_x, self.cols), clamp(hi_x, self.cols));
        let (cy0, cy1) = (clamp(lo_y, self.rows), clamp(hi_y, self.rows));
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &idx in &self.cells[cy * self.cols + cx] {
                    let d2 = self.positions[idx as usize].distance_sq(center);
                    if d2 <= r_sq {
                        visit(idx, d2);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 1.0);
        let c = Point::new(2.0, 9.0);
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within(b, 4.999));
    }

    #[test]
    fn step_towards_respects_bound() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let stepped = a.step_towards(b, 3.0);
        assert!((a.distance(stepped) - 3.0).abs() < 1e-12);
        // Stops at the target when close enough.
        let close = Point::new(1.0, 0.0);
        assert_eq!(close.step_towards(b, 100.0), b);
    }

    #[test]
    fn step_towards_zero_distance() {
        let a = Point::new(2.0, 2.0);
        assert_eq!(a.step_towards(a, 1.0), a);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-3.0, 12.0)), Point::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "Rect min must be <= max")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn rect_center() {
        let r = Rect::new(Point::new(2.0, 2.0), Point::new(6.0, 10.0));
        assert_eq!(r.center(), Point::new(4.0, 6.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(2.0, 4.0));
    }

    /// Brute-force oracle for grid queries.
    fn naive_within(points: &[Point], center: Point, radius: f64) -> Vec<u32> {
        (0..points.len() as u32)
            .filter(|&i| points[i as usize].within(center, radius))
            .collect()
    }

    #[test]
    fn grid_matches_naive_queries() {
        // Deterministic pseudo-random scatter (no RNG dependency here).
        let points: Vec<Point> = (0..200u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                Point::new((h % 1000) as f64 / 7.0, ((h >> 32) % 1000) as f64 / 7.0)
            })
            .collect();
        let mut grid = SpatialGrid::new(20.0);
        grid.rebuild(&points);
        assert_eq!(grid.len(), points.len());
        for (qi, &center) in points.iter().enumerate().step_by(17) {
            for radius in [0.5, 5.0, 20.0, 75.0] {
                let mut got = Vec::new();
                grid.query_within(center, radius, &mut got);
                got.sort_unstable();
                assert_eq!(
                    got,
                    naive_within(&points, center, radius),
                    "query {qi} radius {radius}"
                );
            }
        }
    }

    #[test]
    fn grid_rebuild_reuses_and_resizes() {
        let mut grid = SpatialGrid::new(10.0);
        grid.rebuild(&[Point::new(1.0, 1.0), Point::new(2.0, 2.0)]);
        assert_eq!(grid.len(), 2);
        let mut out = Vec::new();
        grid.query_within(Point::new(1.0, 1.0), 5.0, &mut out);
        assert_eq!(out.len(), 2);

        // Shrink to empty and grow again: queries must stay consistent.
        grid.rebuild(&[]);
        assert!(grid.is_empty());
        out.clear();
        grid.query_within(Point::ORIGIN, 100.0, &mut out);
        assert!(out.is_empty());

        let far = vec![Point::new(0.0, 0.0), Point::new(1e6, 1e6)];
        grid.rebuild(&far);
        out.clear();
        grid.query_within(Point::new(1e6, 1e6), 1.0, &mut out);
        assert_eq!(out, vec![1], "coarsened grid still answers correctly");
    }

    #[test]
    fn grid_query_is_inclusive_like_within() {
        let points = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let mut grid = SpatialGrid::new(20.0);
        grid.rebuild(&points);
        let mut out = Vec::new();
        grid.query_within(Point::ORIGIN, 5.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "boundary point included");
        out.clear();
        grid.query_within(Point::ORIGIN, 4.999, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "grid cell size")]
    fn grid_rejects_bad_cell() {
        let _ = SpatialGrid::new(0.0);
    }

    #[test]
    fn grid_queries_are_in_ascending_index_order() {
        // Points scattered so cell order differs from index order.
        let points = vec![
            Point::new(90.0, 90.0),
            Point::new(1.0, 1.0),
            Point::new(50.0, 50.0),
            Point::new(2.0, 2.0),
        ];
        let mut grid = SpatialGrid::new(10.0);
        grid.rebuild(&points);
        let mut out = Vec::new();
        grid.query_within(Point::new(45.0, 45.0), 100.0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3], "canonical ascending order");
        let mut d2 = Vec::new();
        grid.query_within_d2(Point::new(1.0, 1.0), 2.0, &mut d2);
        assert_eq!(d2.len(), 2);
        assert_eq!((d2[0].0, d2[1].0), (1, 3));
        assert_eq!(d2[0].1, 0.0);
    }

    #[test]
    fn grid_incremental_ops_track_positions() {
        let mut grid = SpatialGrid::new(5.0);
        grid.rebuild(&[Point::new(0.0, 0.0), Point::new(20.0, 0.0)]);
        assert!(grid.covers(Point::new(10.0, 0.0)));
        assert!(!grid.covers(Point::new(30.0, 5.0)));

        // Move point 0 across cells; queries follow it.
        grid.move_point(0, Point::new(19.0, 0.0));
        assert_eq!(grid.position(0), Point::new(19.0, 0.0));
        let mut out = Vec::new();
        grid.query_within(Point::new(20.0, 0.0), 1.5, &mut out);
        assert_eq!(out, vec![0, 1]);

        // Moving outside the anchor stays correct (clamped edge cell).
        grid.move_point(0, Point::new(45.0, 3.0));
        out.clear();
        grid.query_within(Point::new(45.0, 3.0), 1.0, &mut out);
        assert_eq!(out, vec![0]);

        // Insert appends; remove relabels the last index.
        assert_eq!(grid.insert(Point::new(21.0, 0.0)), 2);
        grid.remove(0); // point 2 takes index 0
        assert_eq!(grid.len(), 2);
        assert_eq!(grid.position(0), Point::new(21.0, 0.0));
        out.clear();
        grid.query_within(Point::new(20.5, 0.0), 1.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }
}
