//! Planar geometry primitives used by the simulator.
//!
//! The paper's model places every node at a location in the plane; the
//! quasi-unit-disk channel and the virtual-node regions are all defined
//! in terms of Euclidean distance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A location in the plane, in meters.
///
/// ```
/// use vi_radio::geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper than
    /// [`Point::distance`]; use for comparisons).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` if `other` lies within `radius` of `self`
    /// (inclusive).
    pub fn within(self, other: Point, radius: f64) -> bool {
        self.distance_sq(other) <= radius * radius
    }

    /// Linear interpolation from `self` towards `target` by `t ∈ [0,1]`.
    pub fn lerp(self, target: Point, t: f64) -> Point {
        Point::new(
            self.x + (target.x - self.x) * t,
            self.y + (target.y - self.y) * t,
        )
    }

    /// Moves from `self` towards `target` by at most `max_step`,
    /// stopping exactly at `target` if it is closer than `max_step`.
    ///
    /// This is the primitive by which mobility models enforce the
    /// paper's bounded velocity `vmax` (one round = one time slot, so a
    /// per-round step bound is a velocity bound).
    pub fn step_towards(self, target: Point, max_step: f64) -> Point {
        let d = self.distance(target);
        if d <= max_step || d == 0.0 {
            target
        } else {
            self.lerp(target, max_step / d)
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used to bound mobility models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (inclusive).
    pub min: Point,
    /// Maximum corner (inclusive).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise `<= max`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Rect min must be <= max (got min={min}, max={max})"
        );
        Rect { min, max }
    }

    /// A square of side `side` anchored at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Returns `true` if `p` lies inside the rectangle (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Center of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 1.0);
        let c = Point::new(2.0, 9.0);
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within(b, 4.999));
    }

    #[test]
    fn step_towards_respects_bound() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let stepped = a.step_towards(b, 3.0);
        assert!((a.distance(stepped) - 3.0).abs() < 1e-12);
        // Stops at the target when close enough.
        let close = Point::new(1.0, 0.0);
        assert_eq!(close.step_towards(b, 100.0), b);
    }

    #[test]
    fn step_towards_zero_distance() {
        let a = Point::new(2.0, 2.0);
        assert_eq!(a.step_towards(a, 1.0), a);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-3.0, 12.0)), Point::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "Rect min must be <= max")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn rect_center() {
        let r = Rect::new(Point::new(2.0, 2.0), Point::new(6.0, 10.0));
        assert_eq!(r.center(), Point::new(4.0, 6.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(2.0, 4.0));
    }
}
