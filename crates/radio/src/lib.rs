//! # vi-radio
//!
//! A deterministic, slotted, collision-prone wireless network simulator
//! implementing the system model of *Chockler, Gilbert, Lynch: "Virtual
//! Infrastructure for Collision-Prone Wireless Networks"* (PODC 2008),
//! which in turn derives from the model of Chockler et al., "Consensus
//! and collision detectors in radio networks".
//!
//! The simulator provides:
//!
//! * **Slotted synchronous rounds** — in every round each node either
//!   broadcasts one message or listens ([`Process`]).
//! * **Quasi-unit-disk communication** — nodes within the broadcast
//!   radius `R1` can communicate; broadcasters within the interference
//!   radius `R2` of a receiver destroy reception ([`RadioConfig`]).
//!   Rounds are resolved by the [`Medium`], a spatially-indexed
//!   ([`SpatialGrid`]) path with reusable buffers that is
//!   differentially tested against the naive
//!   [`resolve_round_reference`] specification.
//! * **Collision detectors in class 3A-C** — *complete* (no false
//!   negatives, Property 1 of the paper) and *eventually accurate*
//!   (eventually no false positives, Property 2). See [`channel`].
//! * **Adversarial misbehaviour** before the stabilization rounds
//!   `rcf` (arbitrary message loss) and `racc` (spurious collision
//!   indications) ([`adversary`]).
//! * **Mobility** with bounded velocity `vmax` ([`mobility`]) and a
//!   location service (every process learns its own position each
//!   round, as the paper's GPS assumption provides).
//! * **Fault injection** — crash failures and dynamic arrivals
//!   ([`engine::NodeSpec`]).
//!
//! Executions are fully deterministic given a seed, which makes every
//! experiment in the reproduction replayable.
//!
//! ## Example
//!
//! ```
//! use vi_radio::{Engine, EngineConfig, NodeSpec, Process, RadioConfig, RoundCtx,
//!                RoundReception, WireSized};
//! use vi_radio::geometry::Point;
//! use vi_radio::mobility::Static;
//! use std::any::Any;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u64);
//! impl WireSized for Ping {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! /// Broadcasts its round number once, then listens forever.
//! struct Beacon { sent: bool, heard: usize }
//! impl Process<Ping> for Beacon {
//!     fn transmit(&mut self, ctx: &RoundCtx) -> Option<Ping> {
//!         if self.sent { None } else { self.sent = true; Some(Ping(ctx.round)) }
//!     }
//!     fn deliver(&mut self, _ctx: &RoundCtx, rx: RoundReception<'_, Ping>) {
//!         self.heard += rx.messages.len();
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut engine = Engine::new(EngineConfig {
//!     radio: RadioConfig::reliable(10.0, 20.0),
//!     seed: 7,
//!     record_trace: false,
//! });
//! engine.add_node(NodeSpec::new(
//!     Box::new(Static::new(Point::new(0.0, 0.0))),
//!     Box::new(Beacon { sent: false, heard: 0 }),
//! ));
//! engine.add_node(NodeSpec::new(
//!     Box::new(Static::new(Point::new(1.0, 0.0))),
//!     Box::new(Beacon { sent: true, heard: 0 }),
//! ));
//! engine.run(3);
//! let listener: &Beacon = engine.process(1.into()).unwrap();
//! assert_eq!(listener.heard, 1);
//! ```

pub mod adversary;
pub mod audit;
pub mod channel;
pub mod config;
pub mod engine;
pub mod geometry;
pub mod mobility;
pub mod pool;
pub mod trace;

pub use adversary::{
    Adversary, AdversaryKind, BurstLoss, ComposeAdversary, FaultyDetector, NoAdversary, RandomLoss,
    ScriptedAdversary, WindowedRandomLoss,
};
pub use audit::{audit_trace, ChannelViolation};
pub use channel::{
    resolve_round, resolve_round_reference, AttributedReception, Medium, ReceptionBuffer,
    RoundReception, TopologyDelta, TxIntent,
};
pub use config::{ConfigError, RadioConfig};
pub use engine::{Engine, EngineConfig, NodeId, NodeSpec, Process, RoundCtx};
pub use geometry::{Point, SpatialGrid};
pub use pool::WorkerPool;
pub use trace::{ChannelStats, RoundRecord, Trace};

/// Abstract on-the-wire size of a message, in bytes.
///
/// The paper's efficiency claims (Theorem 14) are about *message size*:
/// every CHAP message is constant sized, independent of the number of
/// nodes and the length of the execution. Rather than serializing,
/// protocol crates implement this trait with a documented abstract
/// accounting (e.g. an instance index counts as 8 bytes — the paper
/// treats array indices as constant size). The engine aggregates these
/// sizes into [`ChannelStats`] so experiments can plot message-size
/// growth.
pub trait WireSized {
    /// Returns the abstract serialized size of this message in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSized for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSized for u8 {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSized for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSized for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSized for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSized for i64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSized for f64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSized for String {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<A: WireSized, B: WireSized> WireSized for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<T: WireSized> WireSized for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSized::wire_size)
    }
}

impl<T: WireSized> WireSized for Vec<T> {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(WireSized::wire_size).sum::<usize>()
    }
}
