//! Mobility models with bounded velocity.
//!
//! The paper's model: "At any given time, a node resides at a location
//! in the plane, and its velocity is bounded by `vmax`." One simulator
//! round is one time slot, so the velocity bound becomes a bound on
//! per-round displacement.
//!
//! Every model implements [`MobilityModel`]; the engine calls
//! [`MobilityModel::advance`] once per round *before* collecting
//! transmissions, and delivers the resulting position to the process
//! through [`RoundCtx`](crate::RoundCtx) — this plays the role of the
//! paper's GPS / location service.

use crate::geometry::{Point, Rect};
use rand::rngs::StdRng;

/// A trajectory generator with bounded per-round displacement.
pub trait MobilityModel {
    /// Returns the node's position for round `round`.
    ///
    /// Implementations must move at most [`MobilityModel::vmax`] per
    /// round; the engine debug-asserts this invariant.
    fn advance(&mut self, round: u64, rng: &mut StdRng) -> Point;

    /// Maximum displacement per round, in meters.
    fn vmax(&self) -> f64;

    /// `true` once this model is *settled*: every future
    /// [`MobilityModel::advance`] call would return the position of the
    /// last call (or the construction position, if never advanced) and
    /// would draw **nothing** from the RNG.
    ///
    /// This is the engine's static-node fast-path contract: for a
    /// placed, settled node `Engine::step` skips the `advance` call
    /// entirely, so a wrong `true` would corrupt positions or the
    /// shared RNG stream. Settling is permanent — a model must never
    /// report `true` and later move or draw randomness. The
    /// conservative default is `false` (always advanced).
    fn is_settled(&self) -> bool {
        false
    }
}

/// A node that never moves (`vmax = 0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Static {
    pos: Point,
}

impl Static {
    /// Creates a static node at `pos`.
    pub fn new(pos: Point) -> Self {
        Static { pos }
    }
}

impl MobilityModel for Static {
    fn advance(&mut self, _round: u64, _rng: &mut StdRng) -> Point {
        self.pos
    }

    fn vmax(&self) -> f64 {
        0.0
    }

    fn is_settled(&self) -> bool {
        true
    }
}

/// Random-waypoint mobility: pick a uniform target in `bounds`, walk
/// towards it at `speed` per round, pick a new target on arrival.
///
/// This is the standard ad-hoc-network mobility model and the default
/// for the churn experiments (E8).
#[derive(Clone, Debug)]
pub struct Waypoint {
    pos: Point,
    target: Point,
    speed: f64,
    bounds: Rect,
}

impl Waypoint {
    /// Creates a waypoint walker starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative or not finite, or if `start` lies
    /// outside `bounds`.
    pub fn new(start: Point, speed: f64, bounds: Rect) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "waypoint speed must be finite and non-negative"
        );
        assert!(
            bounds.contains(start),
            "waypoint start {start} outside bounds {bounds}"
        );
        Waypoint {
            pos: start,
            target: start,
            speed,
            bounds,
        }
    }
}

impl MobilityModel for Waypoint {
    fn advance(&mut self, _round: u64, rng: &mut StdRng) -> Point {
        if self.pos == self.target {
            self.target = Point::new(
                rng.random_range(self.bounds.min.x..=self.bounds.max.x),
                rng.random_range(self.bounds.min.y..=self.bounds.max.y),
            );
        }
        self.pos = self.pos.step_towards(self.target, self.speed);
        self.pos
    }

    fn vmax(&self) -> f64 {
        self.speed
    }

    fn is_settled(&self) -> bool {
        // A zero-speed walker that has already drawn a (distinct)
        // target never reaches it, so it neither moves nor redraws.
        // While `pos == target` the next advance draws a target, so the
        // model is NOT settled then.
        self.speed == 0.0 && self.pos != self.target
    }
}

/// Billiard mobility: constant velocity, reflecting off the bounds.
///
/// Useful for worst-case region-departure experiments: a billiard node
/// leaves a virtual-node region as fast as the velocity bound allows,
/// exercising the temporary-leader lease analysis of Section 4.2.
#[derive(Clone, Debug)]
pub struct Billiard {
    pos: Point,
    vel: (f64, f64),
    bounds: Rect,
}

impl Billiard {
    /// Creates a billiard walker at `start` with velocity `vel`
    /// (meters per round).
    ///
    /// # Panics
    ///
    /// Panics if `start` lies outside `bounds` or `vel` is not finite.
    pub fn new(start: Point, vel: (f64, f64), bounds: Rect) -> Self {
        assert!(
            vel.0.is_finite() && vel.1.is_finite(),
            "billiard velocity must be finite"
        );
        assert!(
            bounds.contains(start),
            "billiard start {start} outside bounds {bounds}"
        );
        Billiard {
            pos: start,
            vel,
            bounds,
        }
    }
}

impl MobilityModel for Billiard {
    fn advance(&mut self, _round: u64, _rng: &mut StdRng) -> Point {
        let mut x = self.pos.x + self.vel.0;
        let mut y = self.pos.y + self.vel.1;
        if x < self.bounds.min.x || x > self.bounds.max.x {
            self.vel.0 = -self.vel.0;
            x = x.clamp(self.bounds.min.x, self.bounds.max.x);
        }
        if y < self.bounds.min.y || y > self.bounds.max.y {
            self.vel.1 = -self.vel.1;
            y = y.clamp(self.bounds.min.y, self.bounds.max.y);
        }
        self.pos = Point::new(x, y);
        self.pos
    }

    fn vmax(&self) -> f64 {
        (self.vel.0 * self.vel.0 + self.vel.1 * self.vel.1).sqrt()
    }

    fn is_settled(&self) -> bool {
        self.vel == (0.0, 0.0)
    }
}

/// Follows an explicit list of waypoints in a loop at bounded speed.
///
/// Used by the robot-coordination example, where client robots patrol
/// fixed circuits through virtual-node regions.
#[derive(Clone, Debug)]
pub struct PatrolRoute {
    pos: Point,
    route: Vec<Point>,
    next: usize,
    speed: f64,
}

impl PatrolRoute {
    /// Creates a patroller that starts at the first waypoint and
    /// visits `route` cyclically at `speed` per round.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or `speed` is negative/not finite.
    pub fn new(route: Vec<Point>, speed: f64) -> Self {
        assert!(!route.is_empty(), "patrol route must not be empty");
        assert!(
            speed.is_finite() && speed >= 0.0,
            "patrol speed must be finite and non-negative"
        );
        PatrolRoute {
            pos: route[0],
            next: 1 % route.len(),
            route,
            speed,
        }
    }
}

impl MobilityModel for PatrolRoute {
    fn advance(&mut self, _round: u64, _rng: &mut StdRng) -> Point {
        let target = self.route[self.next];
        self.pos = self.pos.step_towards(target, self.speed);
        if self.pos == target {
            self.next = (self.next + 1) % self.route.len();
        }
        self.pos
    }

    fn vmax(&self) -> f64 {
        self.speed
    }

    fn is_settled(&self) -> bool {
        // A one-stop circuit pins the patroller to its start; a
        // zero-speed patroller can never reach its next waypoint
        // (`step_towards` with a zero step only moves when already
        // there, and construction starts it *at* route[0] with the next
        // target distinct unless the route is a single stop).
        self.route.len() == 1 || (self.speed == 0.0 && self.pos != self.route[self.next])
    }
}

/// Departs a region at a given round: stays at `home` until
/// `depart_at`, then walks away in a straight line at `speed`.
///
/// Used by churn experiments to script replicas leaving a virtual
/// node's region.
#[derive(Clone, Debug)]
pub struct DepartAt {
    pos: Point,
    direction: (f64, f64),
    speed: f64,
    depart_at: u64,
}

impl DepartAt {
    /// Creates a node at `home` that departs at round `depart_at`
    /// along `direction` (normalized internally) at `speed` per round.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is the zero vector or `speed` is
    /// negative/not finite.
    pub fn new(home: Point, direction: (f64, f64), speed: f64, depart_at: u64) -> Self {
        let norm = (direction.0 * direction.0 + direction.1 * direction.1).sqrt();
        assert!(norm > 0.0, "departure direction must be non-zero");
        assert!(
            speed.is_finite() && speed >= 0.0,
            "departure speed must be finite and non-negative"
        );
        DepartAt {
            pos: home,
            direction: (direction.0 / norm, direction.1 / norm),
            speed,
            depart_at,
        }
    }
}

impl MobilityModel for DepartAt {
    fn advance(&mut self, round: u64, _rng: &mut StdRng) -> Point {
        if round >= self.depart_at {
            self.pos = Point::new(
                self.pos.x + self.direction.0 * self.speed,
                self.pos.y + self.direction.1 * self.speed,
            );
        }
        self.pos
    }

    fn vmax(&self) -> f64 {
        self.speed
    }

    fn is_settled(&self) -> bool {
        // Settling must be permanent, so a pre-departure node does not
        // count (it will move later); only a zero-speed departure never
        // goes anywhere.
        self.speed == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Runs a model for `rounds` rounds and asserts the per-round
    /// displacement bound.
    fn assert_vmax_respected<M: MobilityModel>(mut m: M, rounds: u64) {
        let mut rng = rng();
        let mut prev = m.advance(0, &mut rng);
        for r in 1..rounds {
            let next = m.advance(r, &mut rng);
            let moved = prev.distance(next);
            assert!(
                moved <= m.vmax() + 1e-9,
                "moved {moved} > vmax {} at round {r}",
                m.vmax()
            );
            prev = next;
        }
    }

    #[test]
    fn static_never_moves() {
        let p = Point::new(3.0, 4.0);
        let mut m = Static::new(p);
        let mut rng = rng();
        for r in 0..10 {
            assert_eq!(m.advance(r, &mut rng), p);
        }
    }

    #[test]
    fn waypoint_respects_vmax() {
        let m = Waypoint::new(Point::new(5.0, 5.0), 1.5, Rect::square(100.0));
        assert_vmax_respected(m, 500);
    }

    #[test]
    fn waypoint_stays_in_bounds() {
        let bounds = Rect::square(50.0);
        let mut m = Waypoint::new(Point::new(5.0, 5.0), 3.0, bounds);
        let mut rng = rng();
        for r in 0..1000 {
            let p = m.advance(r, &mut rng);
            assert!(bounds.contains(p), "escaped bounds at round {r}: {p}");
        }
    }

    #[test]
    fn billiard_respects_vmax_and_bounds() {
        let bounds = Rect::square(20.0);
        let m = Billiard::new(Point::new(1.0, 1.0), (0.7, 1.1), bounds);
        let vmax = m.vmax();
        assert!((vmax - (0.49f64 + 1.21).sqrt()).abs() < 1e-12);
        let mut m2 = m.clone();
        let mut rng = rng();
        for r in 0..1000 {
            let p = m2.advance(r, &mut rng);
            assert!(bounds.contains(p));
        }
        assert_vmax_respected(m, 1000);
    }

    #[test]
    fn billiard_bounces() {
        let bounds = Rect::square(5.0);
        let mut m = Billiard::new(Point::new(4.5, 2.0), (1.0, 0.0), bounds);
        let mut rng = rng();
        let p1 = m.advance(0, &mut rng);
        assert_eq!(p1, Point::new(5.0, 2.0));
        let p2 = m.advance(1, &mut rng);
        assert!(p2.x < 5.0, "should have reversed direction");
    }

    #[test]
    fn patrol_visits_waypoints_in_order() {
        let route = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
        ];
        let mut m = PatrolRoute::new(route.clone(), 2.0);
        let mut rng = rng();
        let mut visited = vec![route[0]];
        for r in 0..20 {
            let p = m.advance(r, &mut rng);
            if route.contains(&p) && *visited.last().unwrap() != p {
                visited.push(p);
            }
        }
        assert!(visited.len() >= 3, "should reach several waypoints");
        assert_eq!(visited[1], route[1]);
        assert_eq!(visited[2], route[2]);
    }

    #[test]
    fn depart_at_waits_then_leaves() {
        let home = Point::new(10.0, 10.0);
        let mut m = DepartAt::new(home, (1.0, 0.0), 2.0, 5);
        let mut rng = rng();
        for r in 0..5 {
            assert_eq!(m.advance(r, &mut rng), home);
        }
        let p = m.advance(5, &mut rng);
        assert_eq!(p, Point::new(12.0, 10.0));
        let p = m.advance(6, &mut rng);
        assert_eq!(p, Point::new(14.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "patrol route must not be empty")]
    fn patrol_rejects_empty_route() {
        let _ = PatrolRoute::new(vec![], 1.0);
    }

    /// Replays a model from identical seeds and asserts the two
    /// position streams match (determinism), returning one of them.
    fn positions<M: MobilityModel + Clone>(m: &M, rounds: u64) -> Vec<Point> {
        let run = |mut m: M| -> Vec<Point> {
            let mut rng = rng();
            (0..rounds).map(|r| m.advance(r, &mut rng)).collect()
        };
        let a = run(m.clone());
        let b = run(m.clone());
        assert_eq!(a, b, "mobility must be deterministic per seed");
        a
    }

    #[test]
    fn patrol_with_single_waypoint_pins_the_node() {
        let p = Point::new(3.0, 7.0);
        let m = PatrolRoute::new(vec![p], 2.5);
        for (r, pos) in positions(&m, 50).into_iter().enumerate() {
            assert_eq!(pos, p, "round {r}: a 1-stop patrol never leaves it");
        }
    }

    #[test]
    fn zero_speed_waypoint_never_moves_and_stays_in_bounds() {
        let bounds = Rect::square(30.0);
        let start = Point::new(12.0, 8.0);
        let m = Waypoint::new(start, 0.0, bounds);
        assert_eq!(m.vmax(), 0.0);
        for (r, pos) in positions(&m, 100).into_iter().enumerate() {
            assert_eq!(pos, start, "round {r}: zero speed pins the walker");
            assert!(bounds.contains(pos));
        }
    }

    #[test]
    fn depart_at_in_the_past_departs_immediately() {
        let home = Point::new(5.0, 5.0);
        let m = DepartAt::new(home, (0.0, 1.0), 1.5, 0);
        let ps = positions(&m, 20);
        // Already moving in round 0: no stationary prefix.
        assert_eq!(ps[0], Point::new(5.0, 6.5));
        for (r, pos) in ps.iter().enumerate() {
            let expected = Point::new(5.0, 5.0 + 1.5 * (r as f64 + 1.0));
            assert!(
                pos.distance(expected) < 1e-9,
                "round {r}: {pos} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn waypoint_rejects_start_outside_bounds() {
        let _ = Waypoint::new(Point::new(-1.0, 0.0), 1.0, Rect::square(10.0));
    }
}
