//! Post-hoc auditing of recorded traces against the channel laws.
//!
//! When a protocol misbehaves, the first question is whether the
//! *channel* obeyed its contract. [`audit_trace`] replays a recorded
//! [`Trace`] against the model's laws — delivery only within `R1`,
//! interference within `R2`, detector completeness (Property 1), and
//! post-`racc` accuracy (Property 2) — and reports every round that
//! breaks one. The engine upholds these by construction; the auditor
//! exists so downstream users can verify traces from *modified*
//! engines or hand-written scenarios, and as an executable statement
//! of the model.

use crate::config::RadioConfig;
use crate::engine::NodeId;
use crate::trace::{RoundRecord, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A violation of the channel laws found in a trace.
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelViolation {
    /// A delivery whose sender was beyond `R1` of the receiver.
    DeliveryBeyondR1 {
        /// Round of the delivery.
        round: u64,
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Measured distance.
        distance: f64,
    },
    /// A delivery that should have been destroyed by an interferer
    /// within `R2` of the receiver.
    DeliveryDespiteInterference {
        /// Round of the delivery.
        round: u64,
        /// Receiving node.
        dst: NodeId,
        /// The interfering broadcaster.
        interferer: NodeId,
    },
    /// Property 1: a node lost an `R1` message without its detector
    /// reporting a collision.
    MissedDetection {
        /// Round of the loss.
        round: u64,
        /// The node whose detector stayed silent.
        node: NodeId,
        /// The broadcaster whose message was lost.
        lost_from: NodeId,
    },
    /// Property 2: a post-`racc` collision report with no lost message
    /// within `R2`.
    FalsePositiveAfterRacc {
        /// Round of the report.
        round: u64,
        /// The reporting node.
        node: NodeId,
    },
}

impl fmt::Display for ChannelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelViolation::DeliveryBeyondR1 {
                round,
                src,
                dst,
                distance,
            } => write!(
                f,
                "round {round}: delivery {src}→{dst} at distance {distance:.2} beyond R1"
            ),
            ChannelViolation::DeliveryDespiteInterference {
                round,
                dst,
                interferer,
            } => write!(
                f,
                "round {round}: {dst} received despite interferer {interferer} within R2"
            ),
            ChannelViolation::MissedDetection {
                round,
                node,
                lost_from,
            } => write!(
                f,
                "round {round}: {node} lost a message from {lost_from} without detection"
            ),
            ChannelViolation::FalsePositiveAfterRacc { round, node } => write!(
                f,
                "round {round}: {node} reported a collision after racc with nothing lost in R2"
            ),
        }
    }
}

/// Audits every recorded round of `trace` against `cfg`'s laws.
pub fn audit_trace(trace: &Trace, cfg: &RadioConfig) -> Vec<ChannelViolation> {
    trace
        .rounds
        .iter()
        .flat_map(|r| audit_round(r, cfg))
        .collect()
}

/// Audits a single round record.
pub fn audit_round(rec: &RoundRecord, cfg: &RadioConfig) -> Vec<ChannelViolation> {
    let mut violations = Vec::new();
    let pos: BTreeMap<NodeId, _> = rec.positions.iter().copied().collect();
    let broadcasters: BTreeSet<NodeId> = rec.broadcasts.iter().map(|&(n, _)| n).collect();
    let collided: BTreeSet<NodeId> = rec.collisions.iter().copied().collect();
    let mut received: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(src, dst) in &rec.deliveries {
        received.entry(dst).or_default().insert(src);
    }

    // Delivery laws.
    for &(src, dst) in &rec.deliveries {
        let (Some(&ps), Some(&pd)) = (pos.get(&src), pos.get(&dst)) else {
            continue;
        };
        let d = ps.distance(pd);
        if d > cfg.r1 {
            violations.push(ChannelViolation::DeliveryBeyondR1 {
                round: rec.round,
                src,
                dst,
                distance: d,
            });
        }
        for &k in &broadcasters {
            if k != src && k != dst {
                if let Some(&pk) = pos.get(&k) {
                    if pk.within(pd, cfg.r2) {
                        violations.push(ChannelViolation::DeliveryDespiteInterference {
                            round: rec.round,
                            dst,
                            interferer: k,
                        });
                    }
                }
            }
        }
    }

    // Detector laws, per participating node.
    for &(node, pn) in &rec.positions {
        let got = received.get(&node);
        let mut lost_r1 = None;
        let mut lost_r2 = false;
        for &b in &broadcasters {
            if b == node {
                continue;
            }
            let Some(&pb) = pos.get(&b) else { continue };
            let delivered = got.is_some_and(|s| s.contains(&b));
            if !delivered {
                if pb.within(pn, cfg.r1) {
                    lost_r1 = Some(b);
                }
                if pb.within(pn, cfg.r2) {
                    lost_r2 = true;
                }
            }
        }
        if let Some(lost_from) = lost_r1 {
            if !collided.contains(&node) {
                violations.push(ChannelViolation::MissedDetection {
                    round: rec.round,
                    node,
                    lost_from,
                });
            }
        }
        if rec.round >= cfg.racc && collided.contains(&node) && !lost_r2 {
            violations.push(ChannelViolation::FalsePositiveAfterRacc {
                round: rec.round,
                node,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RandomLoss;
    use crate::geometry::Point;
    use crate::geometry::Rect;
    use crate::mobility::Waypoint;
    use crate::{Engine, EngineConfig, NodeSpec, Process, RoundCtx, RoundReception};
    use std::any::Any;

    struct Chatty;
    impl Process<u64> for Chatty {
        fn transmit(&mut self, ctx: &RoundCtx) -> Option<u64> {
            ctx.round.is_multiple_of(2).then_some(1)
        }
        fn deliver(&mut self, _ctx: &RoundCtx, _rx: RoundReception<'_, u64>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Quiet;
    impl Process<u64> for Quiet {
        fn transmit(&mut self, _ctx: &RoundCtx) -> Option<u64> {
            None
        }
        fn deliver(&mut self, _ctx: &RoundCtx, _rx: RoundReception<'_, u64>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A real engine trace — mobile nodes, adversarial losses before
    /// stabilization — always passes the audit (the engine enforces
    /// the laws by construction).
    #[test]
    fn engine_traces_are_law_abiding() {
        let cfg = RadioConfig::stabilizing(10.0, 20.0, 25);
        let mut engine: Engine<u64> = Engine::new(EngineConfig {
            radio: cfg,
            seed: 8,
            record_trace: true,
        });
        engine.set_adversary(Box::new(RandomLoss::new(0.4, 0.2)));
        for i in 0..6 {
            let start = Point::new(5.0 + 3.0 * i as f64, 10.0);
            engine.add_node(NodeSpec::new(
                Box::new(Waypoint::new(start, 0.8, Rect::square(40.0))),
                if i % 2 == 0 {
                    Box::new(Chatty) as Box<dyn Process<u64>>
                } else {
                    Box::new(Quiet)
                },
            ));
        }
        engine.run(50);
        let violations = audit_trace(engine.trace(), &cfg);
        assert!(violations.is_empty(), "{violations:?}");
    }

    fn record(
        positions: Vec<(usize, f64)>,
        broadcasts: Vec<usize>,
        deliveries: Vec<(usize, usize)>,
        collisions: Vec<usize>,
        round: u64,
    ) -> RoundRecord {
        RoundRecord {
            round,
            positions: positions
                .into_iter()
                .map(|(n, x)| (NodeId::from(n), Point::new(x, 0.0)))
                .collect(),
            broadcasts: broadcasts
                .into_iter()
                .map(|n| (NodeId::from(n), 8))
                .collect(),
            deliveries: deliveries
                .into_iter()
                .map(|(a, b)| (NodeId::from(a), NodeId::from(b)))
                .collect(),
            collisions: collisions.into_iter().map(NodeId::from).collect(),
        }
    }

    #[test]
    fn detects_delivery_beyond_r1() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        let rec = record(vec![(0, 0.0), (1, 15.0)], vec![0], vec![(0, 1)], vec![], 0);
        let v = audit_round(&rec, &cfg);
        assert!(matches!(v[0], ChannelViolation::DeliveryBeyondR1 { .. }));
    }

    #[test]
    fn detects_missed_detection() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        // Node 1 within R1 of broadcaster 0, nothing delivered, no
        // collision reported: completeness broken.
        let rec = record(vec![(0, 0.0), (1, 5.0)], vec![0], vec![], vec![], 0);
        let v = audit_round(&rec, &cfg);
        assert!(matches!(v[0], ChannelViolation::MissedDetection { .. }));
    }

    #[test]
    fn detects_false_positive_after_racc() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        // Nothing broadcast, yet node 0 reported a collision at a
        // round past racc (= 0 here).
        let rec = record(vec![(0, 0.0)], vec![], vec![], vec![0], 5);
        let v = audit_round(&rec, &cfg);
        assert!(matches!(
            v[0],
            ChannelViolation::FalsePositiveAfterRacc { .. }
        ));
    }

    #[test]
    fn detects_delivery_despite_interference() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        // Two broadcasters within R2 of the receiver, yet one message
        // was delivered.
        let rec = record(
            vec![(0, 0.0), (1, 4.0), (2, 8.0)],
            vec![0, 2],
            vec![(0, 1)],
            vec![1],
            0,
        );
        let v = audit_round(&rec, &cfg);
        assert!(v
            .iter()
            .any(|x| matches!(x, ChannelViolation::DeliveryDespiteInterference { .. })));
    }

    #[test]
    fn clean_round_passes() {
        let cfg = RadioConfig::reliable(10.0, 20.0);
        let rec = record(vec![(0, 0.0), (1, 5.0)], vec![0], vec![(0, 1)], vec![], 3);
        assert!(audit_round(&rec, &cfg).is_empty());
    }
}
