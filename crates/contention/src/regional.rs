//! Regional contention managers with temporary-leader leases
//! (Section 4.2 of the paper).
//!
//! Each virtual node at location ℓ has its own "regional" contention
//! manager `Cℓ` that reduces contention among contenders *close to ℓ*
//! (within `R1/4`, the radius of the virtual node's emulation region).
//! Because mobile nodes move, no leader can be permanent; the manager
//! elects **temporary leaders** that hold the channel for a lease of
//! `2(s+10)` rounds — long enough for a node moving away at `vmax` to
//! still complete the virtual rounds it leads.

use crate::manager::{Advice, ChannelFeedback, CmSlot, ContentionManager};
use vi_radio::geometry::Point;

/// Parameters of a [`RegionalCm`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionalConfig {
    /// The virtual node location ℓ this manager serves.
    pub location: Point,
    /// Region radius: only contenders within this distance of ℓ are
    /// eligible (the paper uses `R1/4` for virtual-node emulation).
    pub radius: f64,
    /// Lease length in rounds; the paper uses `2(s+10)` where `s` is
    /// the virtual-node schedule length.
    pub lease: u64,
    /// Round before which the manager advises nobody (models the
    /// manager's own stabilization time); 0 for a perfect manager.
    pub stabilize_at: u64,
}

impl RegionalConfig {
    /// Creates a config with the paper's lease rule `2(s+10)` for
    /// schedule length `s`, perfect from round 0.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn for_schedule(location: Point, radius: f64, schedule_len: u64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "region radius must be positive and finite"
        );
        RegionalConfig {
            location,
            radius,
            lease: 2 * (schedule_len + 10),
            stabilize_at: 0,
        }
    }
}

/// A leader-election contention manager scoped to one virtual-node
/// region, electing temporary leaders with bounded leases.
///
/// Election rule: the lowest-numbered slot that contended *from inside
/// the region* in the previous round becomes leader and holds the
/// channel until its lease expires, it leaves the region, or it stops
/// contending — whichever comes first. This realizes the Section 4.2
/// guarantee: a virtual node makes progress whenever some correct node
/// stays near ℓ for a lease-length interval.
#[derive(Debug)]
pub struct RegionalCm {
    config: RegionalConfig,
    slots: usize,
    prev_contenders: Vec<CmSlot>,
    cur_contenders: Vec<CmSlot>,
    cur_round: u64,
    leader: Option<Lease>,
}

#[derive(Clone, Copy, Debug)]
struct Lease {
    slot: CmSlot,
    expires: u64,
    /// Last round the leader was seen contending from in-region.
    last_seen: u64,
}

impl RegionalCm {
    /// Creates a regional manager.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn new(config: RegionalConfig) -> Self {
        assert!(
            config.radius.is_finite() && config.radius > 0.0,
            "region radius must be positive and finite"
        );
        RegionalCm {
            config,
            slots: 0,
            prev_contenders: Vec::new(),
            cur_contenders: Vec::new(),
            cur_round: 0,
            leader: None,
        }
    }

    /// The current leader's slot, if a lease is in force.
    pub fn leader(&self) -> Option<CmSlot> {
        self.leader.map(|l| l.slot)
    }

    fn roll_round(&mut self, round: u64) {
        if round != self.cur_round {
            self.prev_contenders = if round == self.cur_round + 1 {
                std::mem::take(&mut self.cur_contenders)
            } else {
                self.cur_contenders.clear();
                Vec::new()
            };
            self.cur_round = round;
            // Depose a leader that is absent or expired.
            if let Some(l) = self.leader {
                let absent = round > l.last_seen + 1;
                if round >= l.expires || absent {
                    self.leader = None;
                }
            }
        }
    }
}

impl ContentionManager for RegionalCm {
    fn register(&mut self) -> CmSlot {
        let s = CmSlot(self.slots);
        self.slots += 1;
        s
    }

    fn contend(&mut self, slot: CmSlot, round: u64, pos: Point) -> Advice {
        self.roll_round(round);
        if !pos.within(self.config.location, self.config.radius) {
            // Out-of-region contenders are ineligible (Section 2: the
            // contention-management region is smaller than the
            // broadcast radius).
            return Advice::Passive;
        }
        if !self.cur_contenders.contains(&slot) {
            self.cur_contenders.push(slot);
        }
        if round < self.config.stabilize_at {
            return Advice::Passive;
        }

        match self.leader {
            Some(mut l) if l.slot == slot => {
                l.last_seen = round;
                self.leader = Some(l);
                Advice::Active
            }
            Some(_) => Advice::Passive,
            None => {
                // Elect: lowest in-region contender from the previous
                // round, or the first asker if there were none.
                let winner = self.prev_contenders.iter().copied().min().unwrap_or(slot);
                self.leader = Some(Lease {
                    slot: winner,
                    expires: round + self.config.lease,
                    last_seen: round,
                });
                if winner == slot {
                    Advice::Active
                } else {
                    Advice::Passive
                }
            }
        }
    }

    fn observe(&mut self, _slot: CmSlot, _round: u64, _feedback: ChannelFeedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(lease: u64) -> RegionalCm {
        RegionalCm::new(RegionalConfig {
            location: Point::new(50.0, 50.0),
            radius: 2.5,
            lease,
            stabilize_at: 0,
        })
    }

    const INSIDE: Point = Point::new(50.0, 51.0);
    const OUTSIDE: Point = Point::new(60.0, 50.0);

    #[test]
    fn for_schedule_applies_paper_lease_rule() {
        let c = RegionalConfig::for_schedule(Point::ORIGIN, 2.5, 6);
        assert_eq!(c.lease, 32, "2(s+10) with s=6");
    }

    #[test]
    fn elects_single_in_region_leader() {
        let mut cm = cm(100);
        let slots: Vec<CmSlot> = (0..4).map(|_| cm.register()).collect();
        for round in 0..10 {
            let active: usize = slots
                .iter()
                .filter(|&&s| cm.contend(s, round, INSIDE).is_active())
                .count();
            assert_eq!(active, 1);
        }
        assert_eq!(cm.leader(), Some(slots[0]));
    }

    #[test]
    fn out_of_region_contenders_are_passive() {
        let mut cm = cm(100);
        let a = cm.register();
        let b = cm.register();
        for round in 0..5 {
            assert!(!cm.contend(a, round, OUTSIDE).is_active());
            assert!(cm.contend(b, round, INSIDE).is_active() || round == 0);
        }
        assert_eq!(cm.leader(), Some(b));
    }

    #[test]
    fn leader_departure_triggers_reelection() {
        let mut cm = cm(1000);
        let a = cm.register();
        let b = cm.register();
        for round in 0..3 {
            cm.contend(a, round, INSIDE);
            cm.contend(b, round, INSIDE);
        }
        assert_eq!(cm.leader(), Some(a));
        // Leader a wanders out of the region.
        for round in 3..7 {
            cm.contend(a, round, OUTSIDE);
            cm.contend(b, round, INSIDE);
        }
        assert_eq!(cm.leader(), Some(b), "b takes over after a leaves");
    }

    #[test]
    fn lease_expiry_reelects() {
        let mut cm = cm(4);
        let a = cm.register();
        let b = cm.register();
        let mut a_active_rounds = Vec::new();
        for round in 0..12 {
            if cm.contend(a, round, INSIDE).is_active() {
                a_active_rounds.push(round);
            }
            cm.contend(b, round, INSIDE);
        }
        // `a` is re-elected after each expiry (still the lowest slot),
        // but the lease mechanism must have cycled: leadership is not
        // one unbroken lease.
        assert!(!a_active_rounds.is_empty());
        assert!(
            a_active_rounds.windows(2).all(|w| w[1] - w[0] <= 2),
            "re-election is prompt after expiry"
        );
    }

    #[test]
    fn crashed_leader_is_deposed() {
        let mut cm = cm(1000);
        let a = cm.register();
        let b = cm.register();
        for round in 0..3 {
            cm.contend(a, round, INSIDE);
            cm.contend(b, round, INSIDE);
        }
        assert_eq!(cm.leader(), Some(a));
        // `a` crashes (stops contending). After one transition round,
        // `b` is elected.
        let mut b_leads = false;
        for round in 3..8 {
            if cm.contend(b, round, INSIDE).is_active() {
                b_leads = true;
            }
        }
        assert!(b_leads, "b should take over from the crashed leader");
    }

    #[test]
    fn stabilization_delay_suppresses_advice() {
        let mut cm = RegionalCm::new(RegionalConfig {
            location: Point::new(50.0, 50.0),
            radius: 2.5,
            lease: 100,
            stabilize_at: 5,
        });
        let a = cm.register();
        for round in 0..5 {
            assert!(!cm.contend(a, round, INSIDE).is_active());
        }
        assert!(cm.contend(a, 5, INSIDE).is_active());
    }

    #[test]
    #[should_panic(expected = "region radius must be positive")]
    fn rejects_bad_radius() {
        let _ = RegionalCm::new(RegionalConfig {
            location: Point::ORIGIN,
            radius: 0.0,
            lease: 1,
            stabilize_at: 0,
        });
    }
}
