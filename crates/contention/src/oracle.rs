//! An idealized contention manager that realizes Property 3 exactly.
//!
//! The paper's liveness proofs assume a contention manager that, from
//! some point onwards, advises exactly one (contending, correct) node
//! to be active in every round. [`OracleCm`] provides precisely that
//! from a configurable `stabilize_at` round, with scriptable
//! misbehaviour before it — letting experiments separate "what does
//! CHAP guarantee once the CM stabilizes" (Theorems 10–14) from "how
//! fast does a real backoff scheme stabilize" (see
//! [`BackoffCm`](crate::BackoffCm)).

use crate::manager::{Advice, ChannelFeedback, CmSlot, ContentionManager};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vi_radio::geometry::Point;

/// How the oracle behaves before its stabilization round.
///
/// Serializable so scenario specs (`vi-scenario`) can describe oracle
/// misbehaviour declaratively.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PreStability {
    /// Everyone who contends is told to broadcast — maximal contention
    /// (the worst case for the protocol under test).
    AllActive,
    /// Nobody is told to broadcast — a silent, leaderless channel.
    NoneActive,
    /// Each contender is independently active with the given
    /// probability.
    Random(f64),
}

/// Deterministic leader-election contention manager (Property 3).
///
/// From `stabilize_at` onwards, the leader for round `r` is the
/// lowest-numbered slot that contended in round `r - 1` (or the first
/// contender of round `r` if nobody contended in `r - 1`). Once the
/// contender set is stable this advises the same single node every
/// round, which is exactly the paper's Property 3.
#[derive(Debug)]
pub struct OracleCm {
    stabilize_at: u64,
    pre: PreStability,
    slots: usize,
    rng: StdRng,
    /// Contenders seen in the previous round (sorted by slot).
    prev_contenders: Vec<CmSlot>,
    /// Contenders seen so far in the current round.
    cur_contenders: Vec<CmSlot>,
    cur_round: u64,
    /// Leader chosen for the current round, if any.
    cur_leader: Option<CmSlot>,
}

impl OracleCm {
    /// Creates an oracle that behaves per `pre` before `stabilize_at`
    /// and realizes Property 3 from `stabilize_at` onwards.
    pub fn new(stabilize_at: u64, pre: PreStability, seed: u64) -> Self {
        if let PreStability::Random(p) = pre {
            assert!(
                (0.0..=1.0).contains(&p),
                "pre-stability probability must lie in [0, 1]"
            );
        }
        OracleCm {
            stabilize_at,
            pre,
            slots: 0,
            rng: StdRng::seed_from_u64(seed),
            prev_contenders: Vec::new(),
            cur_contenders: Vec::new(),
            cur_round: 0,
            cur_leader: None,
        }
    }

    /// An oracle that is perfect from round 0 — the common choice for
    /// post-stabilization experiments.
    pub fn perfect() -> Self {
        OracleCm::new(0, PreStability::NoneActive, 0)
    }

    fn roll_round(&mut self, round: u64) {
        if round != self.cur_round {
            // Only the immediately preceding round's contenders matter;
            // a gap (nobody contended for a while) clears history.
            self.prev_contenders = if round == self.cur_round + 1 {
                std::mem::take(&mut self.cur_contenders)
            } else {
                self.cur_contenders.clear();
                Vec::new()
            };
            self.cur_round = round;
            self.cur_leader = None;
        }
    }
}

impl ContentionManager for OracleCm {
    fn register(&mut self) -> CmSlot {
        let s = CmSlot(self.slots);
        self.slots += 1;
        s
    }

    fn contend(&mut self, slot: CmSlot, round: u64, _pos: Point) -> Advice {
        self.roll_round(round);
        if !self.cur_contenders.contains(&slot) {
            self.cur_contenders.push(slot);
        }

        if round < self.stabilize_at {
            return match self.pre {
                PreStability::AllActive => Advice::Active,
                PreStability::NoneActive => Advice::Passive,
                PreStability::Random(p) => {
                    if self.rng.random_bool(p) {
                        Advice::Active
                    } else {
                        Advice::Passive
                    }
                }
            };
        }

        // Stable regime: elect the lowest slot that contended last
        // round; if last round was empty, the first contender this
        // round wins (keeps liveness without ever advising two).
        let leader = match self.cur_leader {
            Some(l) => l,
            None => {
                let l = self.prev_contenders.iter().copied().min().unwrap_or(slot);
                self.cur_leader = Some(l);
                l
            }
        };
        if slot == leader {
            Advice::Active
        } else {
            Advice::Passive
        }
    }

    fn observe(&mut self, _slot: CmSlot, _round: u64, _feedback: ChannelFeedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contend_all(cm: &mut OracleCm, slots: &[CmSlot], round: u64) -> Vec<Advice> {
        slots
            .iter()
            .map(|&s| cm.contend(s, round, Point::ORIGIN))
            .collect()
    }

    #[test]
    fn perfect_oracle_elects_exactly_one() {
        let mut cm = OracleCm::perfect();
        let slots: Vec<CmSlot> = (0..5).map(|_| cm.register()).collect();
        for round in 0..20 {
            let advice = contend_all(&mut cm, &slots, round);
            let active = advice.iter().filter(|a| a.is_active()).count();
            assert_eq!(active, 1, "round {round}: exactly one active");
        }
    }

    #[test]
    fn leader_is_stable_across_rounds() {
        let mut cm = OracleCm::perfect();
        let slots: Vec<CmSlot> = (0..4).map(|_| cm.register()).collect();
        let mut leaders = Vec::new();
        for round in 0..10 {
            let advice = contend_all(&mut cm, &slots, round);
            let leader = advice.iter().position(|a| a.is_active()).unwrap();
            leaders.push(leader);
        }
        // After the first round (bootstrap), the lowest slot leads.
        assert!(leaders[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn leader_crash_triggers_reelection() {
        let mut cm = OracleCm::perfect();
        let slots: Vec<CmSlot> = (0..3).map(|_| cm.register()).collect();
        for round in 0..3 {
            contend_all(&mut cm, &slots, round);
        }
        // Slot 0 stops contending (crashed): slot 1 takes over after
        // one transition round.
        for round in 3..6 {
            let advice: Vec<Advice> = slots[1..]
                .iter()
                .map(|&s| cm.contend(s, round, Point::ORIGIN))
                .collect();
            let active = advice.iter().filter(|a| a.is_active()).count();
            assert!(active <= 1, "never two active");
            if round >= 4 {
                assert_eq!(advice[0], Advice::Active, "slot 1 leads from round 4");
            }
        }
    }

    #[test]
    fn pre_stability_all_active() {
        let mut cm = OracleCm::new(5, PreStability::AllActive, 0);
        let slots: Vec<CmSlot> = (0..3).map(|_| cm.register()).collect();
        let advice = contend_all(&mut cm, &slots, 0);
        assert!(advice.iter().all(|a| a.is_active()), "chaos before rst");
        for round in 1..5 {
            contend_all(&mut cm, &slots, round);
        }
        let advice = contend_all(&mut cm, &slots, 6);
        assert_eq!(advice.iter().filter(|a| a.is_active()).count(), 1);
    }

    #[test]
    fn pre_stability_none_active() {
        let mut cm = OracleCm::new(3, PreStability::NoneActive, 0);
        let slots: Vec<CmSlot> = (0..3).map(|_| cm.register()).collect();
        for round in 0..3 {
            let advice = contend_all(&mut cm, &slots, round);
            assert!(advice.iter().all(|a| !a.is_active()));
        }
    }

    #[test]
    fn round_gap_clears_history() {
        let mut cm = OracleCm::perfect();
        let a = cm.register();
        let b = cm.register();
        contend_all(&mut cm, &[a, b], 0);
        contend_all(&mut cm, &[a, b], 1);
        // Rounds 2-4 nobody contends; at round 5 the first asker (b) wins.
        assert_eq!(cm.contend(b, 5, Point::ORIGIN), Advice::Active);
        assert_eq!(cm.contend(a, 5, Point::ORIGIN), Advice::Passive);
    }

    #[test]
    #[should_panic(expected = "probability must lie in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = OracleCm::new(0, PreStability::Random(2.0), 0);
    }
}
