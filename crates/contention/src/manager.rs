//! The contention-manager abstraction (Property 3 of the paper).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use vi_radio::geometry::Point;

/// A contention-manager registration token.
///
/// Slots are *not* protocol-visible identities: they play the role of
/// the transient, local state any backoff implementation keeps per
/// contender (the paper's model has no unique node identifiers, and no
/// protocol message ever carries a slot).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmSlot(pub(crate) usize);

impl CmSlot {
    /// The underlying registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CmSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The manager's per-round advice to one contender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// Enabled to broadcast this round.
    Active,
    /// Must listen this round.
    Passive,
}

impl Advice {
    /// `true` if the advice is [`Advice::Active`].
    pub fn is_active(self) -> bool {
        matches!(self, Advice::Active)
    }
}

/// What a contender observed on the channel at the end of a round;
/// feedback that drives adaptive managers such as
/// [`BackoffCm`](crate::BackoffCm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelFeedback {
    /// The contender broadcast and its detector reported no collision.
    TxSucceeded,
    /// The contender broadcast and its detector reported a collision.
    TxCollided,
    /// The contender listened and received a message cleanly.
    HeardOther,
    /// The contender listened and its detector reported a collision.
    HeardCollision,
    /// The contender listened and the channel was silent.
    Quiet,
}

/// A contention manager for one broadcast region (Property 3).
///
/// Contract, mirroring the paper:
///
/// 1. *(Eventual uniqueness)* eventually at most one contender is
///    advised `Active` per round;
/// 2. *(Eventual liveness)* if some correct contender contends in
///    every round, eventually some correct contender is advised
///    `Active` in every round;
/// 3. *(No spontaneous activation)* a contender is advised `Active` in
///    round `r` only if it contended in round `r` — guaranteed
///    structurally, since advice is only produced by
///    [`ContentionManager::contend`].
///
/// [`OracleCm`](crate::OracleCm) satisfies 1–2 exactly from its
/// stabilization round; [`BackoffCm`](crate::BackoffCm) satisfies them
/// empirically (with capture, violations become vanishingly rare).
pub trait ContentionManager {
    /// Registers a new contender and returns its slot.
    fn register(&mut self) -> CmSlot;

    /// Requests advice for `round`. Calling this is what it means to
    /// *contend* in `round`. `pos` is the contender's current location
    /// (used by regional managers; global managers ignore it).
    fn contend(&mut self, slot: CmSlot, round: u64, pos: Point) -> Advice;

    /// Reports what the contender observed at the end of `round`.
    /// Adaptive managers use this to adjust backoff; others ignore it.
    fn observe(&mut self, slot: CmSlot, round: u64, feedback: ChannelFeedback);
}

/// A shareable handle to a contention manager, for the co-located
/// processes of one region (the simulator is single-threaded, so
/// `Rc<RefCell<_>>` suffices and keeps executions deterministic).
pub struct SharedCm {
    inner: Rc<RefCell<dyn ContentionManager>>,
}

impl SharedCm {
    /// Wraps a manager for sharing.
    pub fn new<C: ContentionManager + 'static>(cm: C) -> Self {
        SharedCm {
            inner: Rc::new(RefCell::new(cm)),
        }
    }

    /// Registers a new contender.
    pub fn register(&self) -> CmSlot {
        self.inner.borrow_mut().register()
    }

    /// Requests advice for `round` (this is contending).
    pub fn contend(&self, slot: CmSlot, round: u64, pos: Point) -> Advice {
        self.inner.borrow_mut().contend(slot, round, pos)
    }

    /// Reports end-of-round channel feedback.
    pub fn observe(&self, slot: CmSlot, round: u64, feedback: ChannelFeedback) {
        self.inner.borrow_mut().observe(slot, round, feedback)
    }
}

impl Clone for SharedCm {
    fn clone(&self) -> Self {
        SharedCm {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl fmt::Debug for SharedCm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCm").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysActive {
        slots: usize,
    }

    impl ContentionManager for AlwaysActive {
        fn register(&mut self) -> CmSlot {
            let s = CmSlot(self.slots);
            self.slots += 1;
            s
        }
        fn contend(&mut self, _slot: CmSlot, _round: u64, _pos: Point) -> Advice {
            Advice::Active
        }
        fn observe(&mut self, _slot: CmSlot, _round: u64, _feedback: ChannelFeedback) {}
    }

    #[test]
    fn shared_cm_is_shared_state() {
        let cm = SharedCm::new(AlwaysActive { slots: 0 });
        let cm2 = cm.clone();
        let a = cm.register();
        let b = cm2.register();
        assert_ne!(a, b, "registrations visible across clones");
        assert!(cm.contend(a, 0, Point::ORIGIN).is_active());
    }

    #[test]
    fn advice_helpers() {
        assert!(Advice::Active.is_active());
        assert!(!Advice::Passive.is_active());
    }

    #[test]
    fn slot_display() {
        assert_eq!(CmSlot(3).to_string(), "s3");
        assert_eq!(CmSlot(3).index(), 3);
    }
}
