//! # vi-contention
//!
//! Contention managers for collision-prone wireless channels, per
//! Section 1.1 and Property 3 of *Chockler, Gilbert, Lynch (PODC
//! 2008)*.
//!
//! The paper deliberately **decouples contention management from the
//! agreement protocol**: the contention manager designates nodes as
//! *active* (enabled to broadcast) or *passive*, and guarantees that
//! eventually there is exactly one active node among a stable set of
//! contenders (leader election, Property 3). This separates liveness
//! concerns (handled here) from safety concerns (handled by the CHA
//! protocol in `vi-core`, which is safe no matter how the contention
//! manager misbehaves).
//!
//! Three managers are provided:
//!
//! * [`OracleCm`] — realizes Property 3 *exactly* from a configurable
//!   stabilization round, with scriptable misbehaviour before it. The
//!   paper's proofs quantify over such a manager ("from some point
//!   onwards"), so experiments that measure post-stabilization
//!   behaviour use this one.
//! * [`BackoffCm`] — a randomized exponential backoff scheme with
//!   leader capture, the practical implementation the paper says
//!   suffices ("we believe even a simple exponential back-off scheme
//!   to be sufficient"). Achieves Property 3 empirically; see the
//!   convergence tests.
//! * [`RegionalCm`] — the Section 4.2 manager: one per virtual-node
//!   location ℓ, admitting only contenders within a region around ℓ
//!   and electing *temporary leaders* with leases of `2(s+10)` rounds.
//!
//! All managers are driven through the [`ContentionManager`] trait and
//! shared between co-located processes via [`SharedCm`].

pub mod backoff;
pub mod manager;
pub mod oracle;
pub mod regional;

pub use backoff::{BackoffCm, BackoffConfig};
pub use manager::{Advice, ChannelFeedback, CmSlot, ContentionManager, SharedCm};
pub use oracle::{OracleCm, PreStability};
pub use regional::{RegionalCm, RegionalConfig};
