//! Randomized exponential backoff with leader capture.
//!
//! The practical contention manager the paper appeals to: "In
//! practice, contention managers are typically implemented using
//! randomized back-off protocols ... we believe even a simple
//! exponential back-off scheme to be sufficient."
//!
//! Each contender broadcasts with probability `1/w` where `w` is its
//! backoff window. Collisions double `w`; a successful own broadcast
//! resets `w` to 1 (the winner *captures* the channel and keeps
//! winning); hearing another's success makes a contender *defer*
//! (stop competing) until the channel has been quiet for a patience
//! period, which doubles as leader-failure detection.
//!
//! Under a stable contender set this converges rapidly to a single
//! persistent leader — Property 3 empirically (see the tests, which
//! measure convergence over seed sweeps).

use crate::manager::{Advice, ChannelFeedback, CmSlot, ContentionManager};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vi_radio::geometry::Point;

/// Tuning parameters for [`BackoffCm`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffConfig {
    /// Initial backoff window (must be ≥ 1).
    pub initial_window: u64,
    /// Maximum backoff window.
    pub max_window: u64,
    /// Rounds of silence after which a deferring contender rejoins the
    /// competition (leader presumed dead).
    pub patience: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            initial_window: 2,
            max_window: 64,
            patience: 3,
        }
    }
}

impl BackoffConfig {
    fn validate(&self) {
        assert!(self.initial_window >= 1, "initial window must be >= 1");
        assert!(
            self.max_window >= self.initial_window,
            "max window must be >= initial window"
        );
    }
}

#[derive(Clone, Copy, Debug)]
struct SlotState {
    window: u64,
    deferring: bool,
    quiet_rounds: u64,
}

/// Randomized exponential backoff contention manager.
#[derive(Debug)]
pub struct BackoffCm {
    config: BackoffConfig,
    rng: StdRng,
    slots: Vec<SlotState>,
    /// Whether each slot was advised active in the round it last
    /// contended (needed to interpret feedback).
    last_active: Vec<bool>,
}

impl BackoffCm {
    /// Creates a backoff manager with the given tuning and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`BackoffConfig`]).
    pub fn new(config: BackoffConfig, seed: u64) -> Self {
        config.validate();
        BackoffCm {
            config,
            rng: StdRng::seed_from_u64(seed),
            slots: Vec::new(),
            last_active: Vec::new(),
        }
    }

    /// Creates a backoff manager with default tuning.
    pub fn with_seed(seed: u64) -> Self {
        BackoffCm::new(BackoffConfig::default(), seed)
    }

    /// The current backoff window of `slot` (for tests/diagnostics).
    pub fn window(&self, slot: CmSlot) -> u64 {
        self.slots[slot.0].window
    }
}

impl ContentionManager for BackoffCm {
    fn register(&mut self) -> CmSlot {
        let s = CmSlot(self.slots.len());
        self.slots.push(SlotState {
            window: self.config.initial_window,
            deferring: false,
            quiet_rounds: 0,
        });
        self.last_active.push(false);
        s
    }

    fn contend(&mut self, slot: CmSlot, _round: u64, _pos: Point) -> Advice {
        let st = &mut self.slots[slot.0];
        let advice = if st.deferring {
            Advice::Passive
        } else if st.window <= 1 || self.rng.random_ratio(1, st.window as u32) {
            Advice::Active
        } else {
            Advice::Passive
        };
        self.last_active[slot.0] = advice.is_active();
        advice
    }

    fn observe(&mut self, slot: CmSlot, _round: u64, feedback: ChannelFeedback) {
        let cfg = self.config;
        let st = &mut self.slots[slot.0];
        match feedback {
            ChannelFeedback::TxSucceeded => {
                // Captured the channel: keep broadcasting every round.
                st.window = 1;
                st.deferring = false;
                st.quiet_rounds = 0;
            }
            ChannelFeedback::TxCollided => {
                st.window = (st.window * 2).min(cfg.max_window);
                st.quiet_rounds = 0;
            }
            ChannelFeedback::HeardOther => {
                // Someone else holds the channel: defer to them.
                st.deferring = true;
                st.quiet_rounds = 0;
            }
            ChannelFeedback::HeardCollision => {
                st.window = (st.window * 2).min(cfg.max_window);
                st.quiet_rounds = 0;
            }
            ChannelFeedback::Quiet => {
                st.quiet_rounds += 1;
                if st.quiet_rounds > cfg.patience {
                    // Leader presumed gone: rejoin with a fresh window.
                    st.deferring = false;
                    st.window = cfg.initial_window.max(2);
                    st.quiet_rounds = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates a single-hop clique of `n` contenders over `rounds`
    /// rounds and returns, per round, how many were active.
    ///
    /// Channel abstraction: if exactly one contender is active, its
    /// broadcast succeeds and everyone else hears it; if several are
    /// active, everyone observes a collision; if none, the channel is
    /// quiet.
    fn run_clique(n: usize, rounds: u64, seed: u64) -> Vec<usize> {
        let mut cm = BackoffCm::with_seed(seed);
        let slots: Vec<CmSlot> = (0..n).map(|_| cm.register()).collect();
        let mut counts = Vec::new();
        for round in 0..rounds {
            let advice: Vec<bool> = slots
                .iter()
                .map(|&s| cm.contend(s, round, Point::ORIGIN).is_active())
                .collect();
            let active = advice.iter().filter(|&&a| a).count();
            counts.push(active);
            for (i, &s) in slots.iter().enumerate() {
                let fb = match (advice[i], active) {
                    (true, 1) => ChannelFeedback::TxSucceeded,
                    (true, _) => ChannelFeedback::TxCollided,
                    (false, 0) => ChannelFeedback::Quiet,
                    (false, 1) => ChannelFeedback::HeardOther,
                    (false, _) => ChannelFeedback::HeardCollision,
                };
                cm.observe(s, round, fb);
            }
        }
        counts
    }

    #[test]
    fn converges_to_single_leader() {
        // Property 3, empirically: after a convergence prefix, every
        // round has exactly one active node.
        for seed in 0..20 {
            let counts = run_clique(8, 200, seed);
            let tail = &counts[100..];
            let good = tail.iter().filter(|&&c| c == 1).count();
            assert!(
                good as f64 / tail.len() as f64 > 0.95,
                "seed {seed}: leader not captured ({good}/{} single-active rounds)",
                tail.len()
            );
        }
    }

    #[test]
    fn capture_is_stable_once_won() {
        // Once some round has exactly one active contender, that
        // contender keeps the channel for a long stretch.
        let counts = run_clique(5, 300, 42);
        let first_win = counts.iter().position(|&c| c == 1).expect("some win");
        let after = &counts[first_win..(first_win + 50).min(counts.len())];
        let disruptions = after.iter().filter(|&&c| c != 1).count();
        assert!(
            disruptions <= 5,
            "capture should be nearly uninterrupted, got {disruptions} disruptions"
        );
    }

    #[test]
    fn lone_contender_wins_immediately_with_window_one() {
        let mut cm = BackoffCm::new(
            BackoffConfig {
                initial_window: 1,
                max_window: 8,
                patience: 2,
            },
            0,
        );
        let s = cm.register();
        assert!(cm.contend(s, 0, Point::ORIGIN).is_active());
    }

    #[test]
    fn deferring_contender_stays_passive_until_patience() {
        let mut cm = BackoffCm::with_seed(1);
        let s = cm.register();
        cm.observe(s, 0, ChannelFeedback::HeardOther);
        // While the leader is audible, remain passive.
        for round in 1..=3 {
            assert!(!cm.contend(s, round, Point::ORIGIN).is_active());
            cm.observe(s, round, ChannelFeedback::HeardOther);
        }
        // Leader goes silent: after `patience` quiet rounds we rejoin.
        let mut rejoined = false;
        for round in 4..30 {
            let advice = cm.contend(s, round, Point::ORIGIN);
            if advice.is_active() {
                rejoined = true;
                break;
            }
            cm.observe(s, round, ChannelFeedback::Quiet);
        }
        assert!(rejoined, "should rejoin after leader silence");
    }

    #[test]
    fn collision_doubles_window_up_to_max() {
        let mut cm = BackoffCm::new(
            BackoffConfig {
                initial_window: 2,
                max_window: 16,
                patience: 3,
            },
            0,
        );
        let s = cm.register();
        for _ in 0..10 {
            cm.observe(s, 0, ChannelFeedback::TxCollided);
        }
        assert_eq!(cm.window(s), 16, "window capped at max");
    }

    #[test]
    fn success_resets_window() {
        let mut cm = BackoffCm::with_seed(3);
        let s = cm.register();
        cm.observe(s, 0, ChannelFeedback::TxCollided);
        cm.observe(s, 1, ChannelFeedback::TxCollided);
        assert!(cm.window(s) > 1);
        cm.observe(s, 2, ChannelFeedback::TxSucceeded);
        assert_eq!(cm.window(s), 1);
    }

    #[test]
    fn two_contenders_eventually_separate() {
        for seed in 0..10 {
            let counts = run_clique(2, 100, seed);
            assert!(
                counts[60..].iter().filter(|&&c| c == 1).count() > 35,
                "seed {seed}: two contenders should separate"
            );
        }
    }

    #[test]
    #[should_panic(expected = "initial window must be >= 1")]
    fn rejects_zero_window() {
        let _ = BackoffCm::new(
            BackoffConfig {
                initial_window: 0,
                max_window: 8,
                patience: 1,
            },
            0,
        );
    }
}
