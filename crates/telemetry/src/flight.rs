//! Bounded ring-buffer flight recorder.
//!
//! Retains the last K rounds of structured engine events — aggregate
//! receptions, adversary consultations, churn, and nemesis crash
//! transitions — so that when a run ends badly (checker violation,
//! liveness stall, panic) the window can be dumped into a
//! self-contained incident bundle and replayed. Everything recorded
//! is deterministic, so the window participates in byte-identity
//! comparisons via plain `PartialEq`.
//!
//! Like [`crate::Probe`], the recorder is a cloneable handle that is
//! null by default: one branch per site when disabled, `!Send` by
//! construction so recording stays on the sequential control path.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// One structured event inside a round window.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEvent {
    /// Aggregate channel outcome of the round.
    Reception {
        /// Messages delivered to receivers this round.
        delivered: u64,
        /// Collisions reported to receivers this round.
        collisions: u64,
    },
    /// The adversary was consulted this round.
    Adversary {
        /// Drop/spurious/suppress consultations this round.
        checks: u64,
    },
    /// The live participant set changed this round.
    Churn {
        /// Nodes that joined (spawned) this round.
        joined: Vec<u64>,
        /// Nodes that left (crashed or departed) this round.
        left: Vec<u64>,
    },
    /// A scripted crash fired this round.
    Nemesis {
        /// The crashed node.
        node: u64,
    },
}

/// All events of one engine round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundWindow {
    /// Engine round the window covers.
    pub round: u64,
    /// Structured events, in recording order.
    pub events: Vec<FlightEvent>,
}

#[derive(Debug)]
struct FlightState {
    cap: usize,
    window: VecDeque<RoundWindow>,
}

/// Cloneable handle to the flight recorder. Null by default; all
/// methods are no-ops on a disabled handle. Deliberately `!Send`.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    state: Option<Rc<RefCell<FlightState>>>,
}

impl FlightRecorder {
    /// The null recorder.
    pub fn disabled() -> Self {
        FlightRecorder { state: None }
    }

    /// A live recorder retaining the last `k` rounds (`k == 0` is
    /// treated as disabled).
    pub fn enabled(k: usize) -> Self {
        if k == 0 {
            return FlightRecorder::disabled();
        }
        FlightRecorder {
            state: Some(Rc::new(RefCell::new(FlightState {
                cap: k,
                window: VecDeque::with_capacity(k),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Opens the window for engine round `round`, evicting the oldest
    /// round once the ring is full.
    pub fn begin_round(&self, round: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            if s.window.len() == s.cap {
                s.window.pop_front();
            }
            s.window.push_back(RoundWindow {
                round,
                events: Vec::new(),
            });
        }
    }

    /// Appends an event to the current round's window (no-op before
    /// the first [`FlightRecorder::begin_round`]).
    pub fn note(&self, event: FlightEvent) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            if let Some(w) = s.window.back_mut() {
                w.events.push(event);
            }
        }
    }

    /// Snapshots the retained window, oldest round first; empty on a
    /// disabled handle.
    pub fn window(&self) -> Vec<RoundWindow> {
        match &self.state {
            Some(state) => state.borrow().window.iter().cloned().collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.begin_round(0);
        r.note(FlightEvent::Nemesis { node: 1 });
        assert!(r.window().is_empty());
        assert!(!FlightRecorder::enabled(0).is_enabled(), "k = 0 is off");
    }

    #[test]
    fn ring_retains_exactly_the_last_k_rounds() {
        let r = FlightRecorder::enabled(3);
        for round in 0..10u64 {
            r.begin_round(round);
            r.note(FlightEvent::Reception {
                delivered: round,
                collisions: 0,
            });
        }
        let w = r.window();
        assert_eq!(w.len(), 3);
        assert_eq!(
            w.iter().map(|rw| rw.round).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "oldest rounds evicted first"
        );
        assert_eq!(
            w[0].events,
            vec![FlightEvent::Reception {
                delivered: 7,
                collisions: 0
            }]
        );
    }

    #[test]
    fn events_group_under_their_round_and_round_trip_through_json() {
        let r = FlightRecorder::enabled(8);
        r.begin_round(5);
        r.note(FlightEvent::Churn {
            joined: vec![3],
            left: vec![],
        });
        r.note(FlightEvent::Adversary { checks: 12 });
        r.begin_round(6);
        r.note(FlightEvent::Nemesis { node: 3 });
        let w = r.window();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].events.len(), 2);
        assert_eq!(w[1].events, vec![FlightEvent::Nemesis { node: 3 }]);
        let json = serde_json::to_string(&w).unwrap();
        let back: Vec<RoundWindow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn note_before_any_round_is_dropped() {
        let r = FlightRecorder::enabled(2);
        r.note(FlightEvent::Adversary { checks: 1 });
        assert!(r.window().is_empty());
    }
}
