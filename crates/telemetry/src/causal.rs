//! Deterministic causal tracing for the protocol layer.
//!
//! Every client operation and protocol broadcast gets a *trace span*
//! whose id is minted from a dedicated deterministic generator (a
//! SplitMix64 stream seeded from the run seed — deliberately *not* the
//! simulation RNG, so enabling tracing cannot perturb the simulated
//! randomness). Receptions become *causal edges* from the sender's
//! broadcast span to the receiver, and the CHA propose/decide chain
//! plus the traffic invoke/complete chain become parent links between
//! spans. The result is a per-run causal DAG that explains *why* a
//! decision happened, and per-app invoke→decide latency histograms
//! (the "decision timeline").
//!
//! Like [`crate::Probe`], the recorder is a cloneable handle that is
//! null by default: the disabled path costs one branch per site, and
//! recording happens only on the sequential control path so the
//! summary is byte-identical at any worker count.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::trace_export;

/// Spans retained before further recordings only bump the drop
/// counter (bounds memory on metropolis-scale traced runs).
pub const MAX_SPANS: usize = 65_536;

/// Causal edges retained before further recordings only bump the drop
/// counter.
pub const MAX_EDGES: usize = 131_072;

/// What a causal span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A client operation (traffic invoke → complete).
    Op,
    /// A protocol broadcast (one transmit intent).
    Broadcast,
    /// A CHA proposal (Ballot phase of an instance).
    Propose,
    /// A CHA decision (Veto2 phase closing an instance).
    Decide,
}

/// One node in the causal DAG. Compact and numeric: no per-span
/// allocation beyond the containing `Vec` growth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalSpan {
    /// Trace id (never 0; 0 means "no parent").
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// What the span represents.
    pub kind: SpanKind,
    /// Node (or client) index the span belongs to.
    pub node: u64,
    /// Engine round (CHA) or virtual round (traffic) of the event.
    pub round: u64,
    /// Kind-specific tag: CHA instance, traffic op id, or 0.
    pub tag: u64,
}

/// A reception: the sender's broadcast span reached `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalEdge {
    /// The sender's broadcast span id this round (0 if the sender was
    /// not traced, e.g. an adversary-injected spurious frame).
    pub span: u64,
    /// Sending node index.
    pub src: u64,
    /// Receiving node index.
    pub dst: u64,
    /// Engine round of the reception.
    pub round: u64,
}

/// Decision-latency quantiles for one app (rounds, not wall-clock —
/// fully deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionStats {
    /// Completed decision samples.
    pub samples: u64,
    /// Median latency in rounds.
    pub p50: u64,
    /// 95th-percentile latency in rounds.
    pub p95: u64,
    /// 99th-percentile latency in rounds.
    pub p99: u64,
    /// Maximum latency in rounds.
    pub max: u64,
}

/// Everything one traced run recorded: the causal DAG (bounded, with
/// drop counters), the op→span link table for audit witnesses, and
/// per-app decision-latency quantiles. Fully deterministic, so it
/// participates in byte-identity comparisons via plain `PartialEq`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CausalSummary {
    /// All retained spans, in recording order.
    pub spans: Vec<CausalSpan>,
    /// All retained reception edges, in recording order.
    pub edges: Vec<CausalEdge>,
    /// Spans dropped past [`MAX_SPANS`].
    pub dropped_spans: u64,
    /// Edges dropped past [`MAX_EDGES`].
    pub dropped_edges: u64,
    /// Traffic op id → its op span id (links audit witnesses to the
    /// causal DAG).
    pub op_spans: BTreeMap<u64, u64>,
    /// Per-app invoke→decide latency quantiles, in rounds.
    pub decision: BTreeMap<String, DecisionStats>,
}

impl CausalSummary {
    /// Looks up a span by id (linear; summaries are bounded).
    pub fn span(&self, id: u64) -> Option<&CausalSpan> {
        self.spans.iter().find(|s| s.id == id)
    }
}

/// SplitMix64 trace-id generator. Seeded from the run seed but
/// entirely separate from the simulation RNG stream: minting ids
/// cannot perturb the simulated randomness. Never yields 0 (0 is the
/// "no id / no parent" sentinel).
#[derive(Clone, Debug)]
pub struct TraceIdGen {
    state: u64,
}

impl TraceIdGen {
    /// A generator for the given run seed.
    pub fn new(seed: u64) -> Self {
        // Salt so trace ids differ from any raw-seed-derived stream.
        TraceIdGen {
            state: seed ^ 0x7ace_1d5e_ed0f_f1ce,
        }
    }

    /// The next trace id; never 0.
    pub fn next_id(&mut self) -> u64 {
        loop {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if z != 0 {
                return z;
            }
        }
    }
}

#[derive(Debug)]
struct CausalState {
    ids: TraceIdGen,
    round: u64,
    spans: Vec<CausalSpan>,
    edges: Vec<CausalEdge>,
    dropped_spans: u64,
    dropped_edges: u64,
    /// op id → (span id, invoke virtual round).
    open_ops: BTreeMap<u64, (u64, u64)>,
    /// op id → span id, kept after completion for audit linking.
    op_spans: BTreeMap<u64, u64>,
    /// node → (propose span id, propose round).
    last_propose: BTreeMap<u64, (u64, u64)>,
    /// node → last decide span id (the prev-chain anchor).
    last_decide: BTreeMap<u64, u64>,
    /// node → broadcast span id minted this round (reset per round).
    round_tx: BTreeMap<u64, u64>,
    /// app name → invoke→decide latency histogram (rounds).
    decision: BTreeMap<String, LatencyHistogram>,
}

impl CausalState {
    fn push_span(&mut self, span: CausalSpan) {
        if self.spans.len() >= MAX_SPANS {
            self.dropped_spans += 1;
        } else {
            self.spans.push(span);
        }
    }
}

/// Cloneable handle to the causal recorder. Null by default; all
/// methods are no-ops on a disabled handle. Deliberately `!Send` —
/// recording belongs on the sequential control path only.
#[derive(Clone, Debug, Default)]
pub struct CausalRecorder {
    state: Option<Rc<RefCell<CausalState>>>,
}

impl CausalRecorder {
    /// The null recorder: every call is one branch and a return.
    pub fn disabled() -> Self {
        CausalRecorder { state: None }
    }

    /// A live recorder whose trace-id stream derives from `seed`.
    pub fn enabled(seed: u64) -> Self {
        CausalRecorder {
            state: Some(Rc::new(RefCell::new(CausalState {
                ids: TraceIdGen::new(seed),
                round: 0,
                spans: Vec::new(),
                edges: Vec::new(),
                dropped_spans: 0,
                dropped_edges: 0,
                open_ops: BTreeMap::new(),
                op_spans: BTreeMap::new(),
                last_propose: BTreeMap::new(),
                last_decide: BTreeMap::new(),
                round_tx: BTreeMap::new(),
                decision: BTreeMap::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Marks the start of engine round `round`; clears the per-round
    /// broadcast-span table.
    pub fn begin_round(&self, round: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            s.round = round;
            s.round_tx.clear();
        }
    }

    /// Records a broadcast by `node` this round and returns its span
    /// id (receptions reference it via [`CausalRecorder::reception`]).
    pub fn broadcast(&self, node: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let id = s.ids.next_id();
            let parent = s.last_propose.get(&node).map_or(0, |&(span, _)| span);
            let round = s.round;
            s.push_span(CausalSpan {
                id,
                parent,
                kind: SpanKind::Broadcast,
                node,
                round,
                tag: 0,
            });
            s.round_tx.insert(node, id);
        }
    }

    /// Records that `dst` received `src`'s broadcast this round. The
    /// edge carries the sender's broadcast span id minted by
    /// [`CausalRecorder::broadcast`] this round (0 if the sender did
    /// not broadcast under tracing, e.g. a spurious frame).
    pub fn reception(&self, src: u64, dst: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let span = s.round_tx.get(&src).copied().unwrap_or(0);
            let round = s.round;
            if s.edges.len() >= MAX_EDGES {
                s.dropped_edges += 1;
            } else {
                s.edges.push(CausalEdge {
                    span,
                    src,
                    dst,
                    round,
                });
            }
        }
    }

    /// Records a client op invocation (traffic layer; `round` is the
    /// virtual round of admission).
    pub fn invoke(&self, op: u64, client: u64, round: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let id = s.ids.next_id();
            s.push_span(CausalSpan {
                id,
                parent: 0,
                kind: SpanKind::Op,
                node: client,
                round,
                tag: op,
            });
            s.open_ops.insert(op, (id, round));
            s.op_spans.insert(op, id);
        }
    }

    /// Records a client op completion at virtual round `round` and
    /// feeds the invoke→complete latency into `app`'s decision
    /// timeline.
    pub fn complete(&self, app: &str, op: u64, round: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            if let Some((_, invoked)) = s.open_ops.remove(&op) {
                let latency = round.saturating_sub(invoked);
                s.decision
                    .entry(app.to_string())
                    .or_default()
                    .record(latency);
            }
        }
    }

    /// Records a CHA proposal by `node` for `instance` this round.
    /// Its parent is the node's previous decide span (the prev-chain).
    pub fn propose(&self, node: u64, instance: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let id = s.ids.next_id();
            let parent = s.last_decide.get(&node).copied().unwrap_or(0);
            let round = s.round;
            s.push_span(CausalSpan {
                id,
                parent,
                kind: SpanKind::Propose,
                node,
                round,
                tag: instance,
            });
            s.last_propose.insert(node, (id, round));
        }
    }

    /// Records a CHA decision by `node` closing `instance` this
    /// round; its parent is the node's propose span, and the
    /// propose→decide distance feeds the `cha` decision timeline.
    pub fn decide(&self, node: u64, instance: u64) {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let id = s.ids.next_id();
            let (parent, proposed) = s.last_propose.get(&node).copied().unwrap_or((0, 0));
            let round = s.round;
            s.push_span(CausalSpan {
                id,
                parent,
                kind: SpanKind::Decide,
                node,
                round,
                tag: instance,
            });
            s.last_decide.insert(node, id);
            if parent != 0 {
                let latency = round.saturating_sub(proposed);
                s.decision
                    .entry("cha".to_string())
                    .or_default()
                    .record(latency);
            }
        }
    }

    /// Snapshots the recording into a serializable summary; `None` on
    /// a disabled handle.
    pub fn summary(&self) -> Option<CausalSummary> {
        let state = self.state.as_ref()?;
        let s = state.borrow();
        let decision = s
            .decision
            .iter()
            .map(|(app, h)| {
                (
                    app.clone(),
                    DecisionStats {
                        samples: h.count(),
                        p50: h.p50(),
                        p95: h.p95(),
                        p99: h.p99(),
                        max: h.max(),
                    },
                )
            })
            .collect();
        Some(CausalSummary {
            spans: s.spans.clone(),
            edges: s.edges.clone(),
            dropped_spans: s.dropped_spans,
            dropped_edges: s.dropped_edges,
            op_spans: s.op_spans.clone(),
            decision,
        })
    }
}

/// Exports a causal summary as Perfetto flow events riding the global
/// trace collector (no-op unless tracing is enabled; see
/// [`trace_export::enable_tracing`]).
///
/// Timestamps are *synthetic*: round `r` maps to `r * 1000` µs on the
/// dedicated [`trace_export::PID_PROTO`] lane, so the flows render as
/// a deterministic protocol timeline rather than wall-clock noise.
pub fn export_flows(summary: &CausalSummary) {
    if !trace_export::tracing_enabled() {
        return;
    }
    const ROUND_US: u64 = 1000;
    for span in &summary.spans {
        let (name, cat) = match span.kind {
            SpanKind::Op => ("op", "traffic"),
            SpanKind::Broadcast => ("broadcast", "protocol"),
            SpanKind::Propose => ("propose", "cha"),
            SpanKind::Decide => ("decide", "cha"),
        };
        trace_export::record_span(
            name,
            cat,
            trace_export::PID_PROTO,
            span.node,
            span.round * ROUND_US,
            ROUND_US / 2,
        );
    }
    // One flow per reception edge: start at the sender's broadcast
    // round, finish at the receiver in the same round. Per-edge ids
    // keep Perfetto from chaining unrelated arrows together.
    for (i, edge) in summary.edges.iter().enumerate() {
        if edge.span == 0 {
            continue;
        }
        let ts = edge.round * ROUND_US;
        let flow = i as u64 + 1;
        trace_export::record_flow(
            "rx",
            "protocol",
            "s",
            trace_export::PID_PROTO,
            edge.src,
            ts,
            flow,
        );
        trace_export::record_flow(
            "rx",
            "protocol",
            "f",
            trace_export::PID_PROTO,
            edge.dst,
            ts + ROUND_US / 2,
            flow,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_nonzero_and_distinct() {
        let mut a = TraceIdGen::new(7);
        let mut b = TraceIdGen::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let id = a.next_id();
            assert_eq!(id, b.next_id(), "same seed, same stream");
            assert_ne!(id, 0, "0 is the no-id sentinel");
            assert!(seen.insert(id), "ids repeat within a short stream");
        }
        let mut c = TraceIdGen::new(8);
        assert_ne!(a.next_id(), c.next_id(), "different seeds diverge");
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = CausalRecorder::disabled();
        assert!(!r.is_enabled());
        r.begin_round(1);
        r.broadcast(0);
        r.reception(0, 1);
        r.invoke(1, 0, 0);
        r.complete("register", 1, 3);
        r.propose(0, 1);
        r.decide(0, 1);
        assert!(r.summary().is_none());
    }

    #[test]
    fn propose_decide_chain_links_parents_and_times_decisions() {
        let r = CausalRecorder::enabled(3);
        r.begin_round(0);
        r.propose(0, 1);
        r.broadcast(0);
        r.begin_round(2);
        r.decide(0, 1);
        r.begin_round(3);
        r.propose(0, 2);
        let s = r.summary().expect("enabled");
        assert_eq!(s.spans.len(), 4);
        let propose1 = s.spans[0];
        let tx = s.spans[1];
        let decide1 = s.spans[2];
        let propose2 = s.spans[3];
        assert_eq!(propose1.kind, SpanKind::Propose);
        assert_eq!(propose1.parent, 0, "first proposal is a root");
        assert_eq!(tx.parent, propose1.id, "broadcast hangs off the proposal");
        assert_eq!(decide1.parent, propose1.id, "decide closes the proposal");
        assert_eq!(
            propose2.parent, decide1.id,
            "prev-chain: next proposal hangs off the decide"
        );
        let cha = s.decision.get("cha").expect("cha timeline");
        assert_eq!(cha.samples, 1);
        assert_eq!(cha.max, 2, "proposed at round 0, decided at round 2");
    }

    #[test]
    fn receptions_carry_the_senders_round_span() {
        let r = CausalRecorder::enabled(5);
        r.begin_round(4);
        r.broadcast(2);
        r.reception(2, 0);
        r.reception(9, 0); // untraced sender: span id 0
        r.begin_round(5);
        r.reception(2, 1); // stale: node 2 did not broadcast this round
        let s = r.summary().expect("enabled");
        assert_eq!(s.edges.len(), 3);
        assert_eq!(s.edges[0].span, s.spans[0].id);
        assert_eq!(s.edges[0].round, 4);
        assert_eq!(s.edges[1].span, 0);
        assert_eq!(s.edges[2].span, 0, "round_tx resets every round");
    }

    #[test]
    fn op_lifecycle_feeds_per_app_decision_timelines() {
        let r = CausalRecorder::enabled(11);
        r.invoke(100, 0, 2);
        r.invoke(101, 1, 2);
        r.complete("register", 100, 5);
        r.complete("register", 101, 2);
        r.complete("register", 999, 9); // unknown op: ignored
        let s = r.summary().expect("enabled");
        let reg = s.decision.get("register").expect("register timeline");
        assert_eq!(reg.samples, 2);
        assert_eq!(reg.max, 3);
        assert_eq!(s.op_spans.len(), 2, "op links survive completion");
        assert_eq!(
            s.op_spans.get(&100),
            Some(&s.spans[0].id),
            "op 100 links to its invoke span"
        );
    }

    #[test]
    fn span_and_edge_caps_count_drops_instead_of_growing() {
        let r = CausalRecorder::enabled(1);
        r.begin_round(0);
        for node in 0..(MAX_SPANS as u64 + 10) {
            r.broadcast(node);
        }
        for dst in 0..(MAX_EDGES as u64 + 10) {
            r.reception(0, dst);
        }
        let s = r.summary().expect("enabled");
        assert_eq!(s.spans.len(), MAX_SPANS);
        assert_eq!(s.dropped_spans, 10);
        assert_eq!(s.edges.len(), MAX_EDGES);
        assert_eq!(s.dropped_edges, 10);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let r = CausalRecorder::enabled(2);
        r.begin_round(0);
        r.propose(0, 1);
        r.broadcast(0);
        r.reception(0, 1);
        r.begin_round(2);
        r.decide(0, 1);
        r.invoke(7, 1, 0);
        r.complete("mutex", 7, 4);
        let s = r.summary().expect("enabled");
        let json = serde_json::to_string(&s).unwrap();
        let back: CausalSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(s.span(s.spans[0].id).is_some());
        assert!(s.span(0).is_none());
    }
}
