//! # vi-telemetry
//!
//! Observability for the deterministic simulator stack, split along
//! the determinism boundary:
//!
//! * **Deterministic counters** ([`Counters`], module [`counters`]) —
//!   plain `u64` totals of *logical* engine decisions (rounds by
//!   resolver mode, cache re-anchors, fallback causes, grid queries,
//!   receptions, adversary consultations, …). Counters are part of
//!   the determinism contract: for a fixed `(spec, seed)` they are
//!   byte-identical at any worker count, because every increment
//!   happens on the sequential control path at a decision point, never
//!   inside a parallel worker.
//! * **Wall-clock phase timers** ([`PhaseTimers`], module [`phases`])
//!   — per-round durations of the advance / geometry / finalize /
//!   deliver / checker phases, aggregated into alloc-free log-linear
//!   [`LatencyHistogram`]s. Wall-clock is *explicitly outside* the
//!   determinism contract and excluded from byte-identity comparisons
//!   (see [`TelemetrySummary`]'s `PartialEq`).
//! * **Perfetto/Chrome trace export** (module [`trace_export`]) —
//!   span events across sweep workers and shard-pool workers, written
//!   as Chrome trace-event JSON that opens directly in
//!   `ui.perfetto.dev`. Gated by the `VI_TRACE=out.json` environment
//!   variable or an explicit [`trace_export::enable_tracing`] call.
//! * **Causal tracing** ([`CausalRecorder`], module [`causal`]) —
//!   deterministic trace ids for client ops, protocol broadcasts, and
//!   CHA propose/decide chains, reconstructed into per-run causal
//!   DAGs with per-app invoke→decide latency timelines, exportable as
//!   Perfetto flow events. Ids come from a dedicated SplitMix64
//!   stream, so tracing never perturbs the simulation RNG.
//! * **Flight recorder** ([`FlightRecorder`], module [`flight`]) — a
//!   bounded ring of the last K rounds of structured events
//!   (receptions, adversary verdicts, churn, nemesis crashes), the
//!   raw material for replayable incident bundles.
//! * **Live monitoring** ([`Monitor`], module [`monitor`]) — periodic
//!   [`TelemetrySnapshot`]s every K rounds (counter deltas, phase
//!   histogram deltas, in-flight traffic) streamed through pluggable
//!   [`MonitorSink`]s: a JSONL event log (`VI_MONITOR_LOG`), a bounded
//!   in-memory ring, and a Prometheus-text `/metrics` exporter
//!   (`VI_MONITOR_ADDR`).
//!
//! The whole layer is threaded through the engine as a [`Probe`]: a
//! cloneable handle that is null by default, so the disabled path
//! costs exactly one branch per instrumentation site (guarded by the
//! zero-alloc test and the CI telemetry-overhead check).

pub mod causal;
pub mod counters;
pub mod flight;
pub mod histogram;
pub mod monitor;
pub mod phases;
pub mod probe;
pub mod trace_export;

pub use causal::{CausalEdge, CausalRecorder, CausalSpan, CausalSummary, DecisionStats, SpanKind};
pub use counters::Counters;
pub use flight::{FlightEvent, FlightRecorder, RoundWindow};
pub use histogram::{LatencyHistogram, BUCKETS, EMPTY_QUANTILE};
pub use monitor::{
    JobEvent, JobState, JsonlSink, Monitor, MonitorEvent, MonitorSink, PrometheusExporter,
    RingSink, SinkSet, TelemetrySnapshot, TrafficProgress,
};
pub use phases::{Phase, PhaseStats, PhaseSummary, PhaseTimers};
pub use probe::Probe;

use serde::{Deserialize, Serialize};

/// Everything one telemetry-enabled run measured: the deterministic
/// counter totals plus the wall-clock phase breakdown.
///
/// Serialized in full (counters *and* phases), but compared by
/// counters only: `PartialEq` deliberately ignores the wall-clock
/// fields so that telemetry-enabled outcomes can be asserted equal
/// across worker counts — the assertion then checks exactly the
/// deterministic contract and tolerates timing jitter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Deterministic per-run totals (worker-count independent).
    pub counters: Counters,
    /// Wall-clock per-phase durations (noise; never byte-identical).
    pub phases: PhaseSummary,
    /// Rounds resolved on the tile-sharded path. Wall-clock-side by
    /// design: whether a round shards depends on the worker count, so
    /// this is *not* part of the determinism contract.
    pub sharded_rounds: u64,
}

impl PartialEq for TelemetrySummary {
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_equality_ignores_wall_clock() {
        let mut a = TelemetrySummary {
            counters: Counters::default(),
            phases: PhaseTimers::default().summary(),
            sharded_rounds: 0,
        };
        let mut b = a.clone();
        let mut timers = PhaseTimers::default();
        timers.record(Phase::Geometry, 123);
        b.phases = timers.summary();
        b.sharded_rounds = 7;
        assert_eq!(a, b, "wall-clock fields must not break equality");
        a.counters.rounds_total = 1;
        assert_ne!(a, b, "counter drift must break equality");
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut timers = PhaseTimers::default();
        timers.record(Phase::Advance, 10);
        timers.record(Phase::Deliver, 99);
        let counters = Counters {
            rounds_total: 3,
            rounds_steady: 2,
            grid_queries: 41,
            ..Counters::default()
        };
        let summary = TelemetrySummary {
            counters,
            phases: timers.summary(),
            sharded_rounds: 2,
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters, summary.counters);
        assert_eq!(back.sharded_rounds, 2);
        assert_eq!(back.phases, summary.phases);
    }
}
