//! Deterministic per-run counters.
//!
//! Every field is a plain `u64` incremented on the *sequential*
//! control path of the engine — at the point where a resolver-mode
//! decision is made, never inside a parallel worker. That placement is
//! what makes the whole struct part of the determinism contract: for a
//! fixed `(spec, seed)` the counters are byte-identical at any worker
//! count, and the 1-vs-N sweep identity tests assert exactly that.
//!
//! Note what is *not* here: anything whose value depends on the worker
//! count (e.g. how many rounds actually took the sharded path) lives
//! on the wall-clock side of `TelemetrySummary` instead.

use serde::{Deserialize, Serialize};

/// Deterministic totals for one run. All fields are public and plain
/// `u64` so the increment sites compile to a single add — no atomics,
/// no allocation, no indirection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Rounds resolved, across every path (= sum of the per-mode
    /// round counters below).
    pub rounds_total: u64,
    /// Rounds on the settled fast path: cache valid, movers applied
    /// surgically (or no movers at all), full receiver scan.
    pub rounds_steady: u64,
    /// Rounds that took the scatter shortcut: few enough broadcasters
    /// that per-broadcaster range queries beat a full receiver scan.
    pub rounds_scatter: u64,
    /// Rounds that rebuilt the spatial index from scratch (stale
    /// cache, anchor drift, mass move, or participant churn).
    pub rounds_reanchor: u64,
    /// Rounds resolved by the broadcaster-only churn index.
    pub rounds_churn: u64,
    /// Rounds resolved by the legacy O(n²) reference path.
    pub rounds_legacy: u64,
    /// Spatial-index rebuilds (== `rounds_reanchor`; kept separate so
    /// the name survives if re-anchoring ever decouples from rounds).
    pub cache_reanchors: u64,
    /// Rounds where the mover dirty-set was applied surgically.
    pub mover_rounds: u64,
    /// Total mover slots across all surgical rounds (dirty-set mass;
    /// divide by `mover_rounds` for the mean dirty-set size).
    pub mover_slots: u64,
    /// Rebuilds forced because the participant set changed.
    pub fallback_participant_churn: u64,
    /// Rebuilds forced because too many nodes moved in one round.
    pub fallback_mass_move: u64,
    /// Rebuilds forced because the cache was stale (first round after
    /// construction, or the slot count changed).
    pub fallback_stale_cache: u64,
    /// Rebuilds forced because a mover left the anchored grid region.
    pub fallback_anchor_drift: u64,
    /// Neighborhood queries issued against the spatial index (zero on
    /// steady cached rounds — that is the whole point of the cache).
    pub grid_queries: u64,
    /// Messages delivered to receivers.
    pub receptions: u64,
    /// Collisions detected at receivers.
    pub collisions: u64,
    /// Adversary consultations (drop/spurious/suppress calls).
    pub adversary_checks: u64,
    /// Traffic requests that exceeded their deadline.
    pub traffic_timeouts: u64,
    /// Operations captured by the audit history recorder.
    pub audit_ops: u64,
}

impl Counters {
    /// Adds every count of `other` into `self`. Plain field-wise sums,
    /// so merging per-seed counters in job order is itself
    /// deterministic.
    pub fn merge(&mut self, other: &Counters) {
        let rhs = other.rows();
        for (slot, (_, v)) in self.rows_mut().into_iter().zip(rhs) {
            *slot += v;
        }
    }

    /// The field-wise difference `self - earlier`, saturating at zero.
    /// This is the snapshot-delta operation: counters only ever grow,
    /// so for any two snapshots of the same run `later.delta(&earlier)`
    /// is the exact activity between them, and merging consecutive
    /// deltas in order reconstructs the totals
    /// (`delta`/[`Counters::merge`] are inverse by construction).
    pub fn delta(&self, earlier: &Counters) -> Counters {
        let mut d = *self;
        let rhs = earlier.rows();
        for (slot, (_, v)) in d.rows_mut().into_iter().zip(rhs) {
            *slot = slot.saturating_sub(v);
        }
        d
    }

    /// The counters as `(name, value)` rows in declaration order —
    /// the single source of truth for table/demo output so a new
    /// field can't be silently dropped from reports.
    pub fn rows(&self) -> [(&'static str, u64); 19] {
        [
            ("rounds_total", self.rounds_total),
            ("rounds_steady", self.rounds_steady),
            ("rounds_scatter", self.rounds_scatter),
            ("rounds_reanchor", self.rounds_reanchor),
            ("rounds_churn", self.rounds_churn),
            ("rounds_legacy", self.rounds_legacy),
            ("cache_reanchors", self.cache_reanchors),
            ("mover_rounds", self.mover_rounds),
            ("mover_slots", self.mover_slots),
            (
                "fallback_participant_churn",
                self.fallback_participant_churn,
            ),
            ("fallback_mass_move", self.fallback_mass_move),
            ("fallback_stale_cache", self.fallback_stale_cache),
            ("fallback_anchor_drift", self.fallback_anchor_drift),
            ("grid_queries", self.grid_queries),
            ("receptions", self.receptions),
            ("collisions", self.collisions),
            ("adversary_checks", self.adversary_checks),
            ("traffic_timeouts", self.traffic_timeouts),
            ("audit_ops", self.audit_ops),
        ]
    }

    /// Mutable field slots in the same order as [`Counters::rows`].
    fn rows_mut(&mut self) -> [&mut u64; 19] {
        [
            &mut self.rounds_total,
            &mut self.rounds_steady,
            &mut self.rounds_scatter,
            &mut self.rounds_reanchor,
            &mut self.rounds_churn,
            &mut self.rounds_legacy,
            &mut self.cache_reanchors,
            &mut self.mover_rounds,
            &mut self.mover_slots,
            &mut self.fallback_participant_churn,
            &mut self.fallback_mass_move,
            &mut self.fallback_stale_cache,
            &mut self.fallback_anchor_drift,
            &mut self.grid_queries,
            &mut self.receptions,
            &mut self.collisions,
            &mut self.adversary_checks,
            &mut self.traffic_timeouts,
            &mut self.audit_ops,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_every_field() {
        // A Counters with every field distinct; rows() must surface
        // each value exactly once, in declaration order.
        let mut c = Counters::default();
        let fields: Vec<&mut u64> = vec![
            &mut c.rounds_total,
            &mut c.rounds_steady,
            &mut c.rounds_scatter,
            &mut c.rounds_reanchor,
            &mut c.rounds_churn,
            &mut c.rounds_legacy,
            &mut c.cache_reanchors,
            &mut c.mover_rounds,
            &mut c.mover_slots,
            &mut c.fallback_participant_churn,
            &mut c.fallback_mass_move,
            &mut c.fallback_stale_cache,
            &mut c.fallback_anchor_drift,
            &mut c.grid_queries,
            &mut c.receptions,
            &mut c.collisions,
            &mut c.adversary_checks,
            &mut c.traffic_timeouts,
            &mut c.audit_ops,
        ];
        for (i, f) in fields.into_iter().enumerate() {
            *f = (i + 1) as u64;
        }
        let rows = c.rows();
        for (i, (name, v)) in rows.iter().enumerate() {
            assert_eq!(*v, (i + 1) as u64, "row {name} out of order");
        }
    }

    /// Drift guard: a newly added `Counters` field that is not wired
    /// into `rows()` must fail this test, not silently vanish from
    /// every table and report. Two independent reflections are
    /// checked — the struct's size (all fields are `u64`, so
    /// `size_of` counts them exactly) and its serde field names.
    #[test]
    fn rows_cover_every_field_by_reflection() {
        let c = Counters::default();
        let rows = c.rows();
        assert_eq!(
            std::mem::size_of::<Counters>(),
            rows.len() * std::mem::size_of::<u64>(),
            "a Counters field is missing from rows()"
        );
        let serde::Value::Map(fields) = serde::Serialize::to_value(&c) else {
            panic!("Counters serializes as a field map");
        };
        assert_eq!(fields.len(), rows.len(), "serde/rows field count drift");
        for ((name, _), (field, _)) in rows.iter().zip(&fields) {
            assert_eq!(name, field, "rows() order diverged from the fields");
        }
    }

    #[test]
    fn merge_is_field_wise_addition() {
        let mut a = Counters {
            rounds_total: 10,
            rounds_steady: 7,
            grid_queries: 100,
            ..Counters::default()
        };
        let b = Counters {
            rounds_total: 5,
            rounds_scatter: 2,
            grid_queries: 1,
            audit_ops: 9,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.rounds_total, 15);
        assert_eq!(a.rounds_steady, 7);
        assert_eq!(a.rounds_scatter, 2);
        assert_eq!(a.grid_queries, 101);
        assert_eq!(a.audit_ops, 9);
    }

    #[test]
    fn delta_inverts_merge() {
        let a = Counters {
            rounds_total: 10,
            rounds_steady: 7,
            grid_queries: 100,
            ..Counters::default()
        };
        let b = Counters {
            rounds_total: 5,
            rounds_scatter: 2,
            grid_queries: 1,
            audit_ops: 9,
            ..Counters::default()
        };
        let mut total = a;
        total.merge(&b);
        assert_eq!(total.delta(&a), b, "(a ⊕ b) ⊖ a == b");
        assert_eq!(total.delta(&b), a, "(a ⊕ b) ⊖ b == a");
        assert_eq!(a.delta(&a), Counters::default(), "a ⊖ a == 0");
    }

    #[test]
    fn delta_saturates_instead_of_panicking() {
        let small = Counters {
            rounds_total: 1,
            ..Counters::default()
        };
        let big = Counters {
            rounds_total: 5,
            receptions: 3,
            ..Counters::default()
        };
        let d = small.delta(&big);
        assert_eq!(d, Counters::default());
    }

    #[test]
    fn merge_is_associative_over_deltas() {
        // Merging consecutive snapshot deltas in any grouping yields
        // the same totals — the property the monitor's reconciliation
        // check leans on.
        let mk = |seed: u64| {
            let mut c = Counters::default();
            for (i, slot) in c.rows_mut().into_iter().enumerate() {
                *slot = seed.wrapping_mul(31).wrapping_add(i as u64) % 97;
            }
            c
        };
        let (a, b, c) = (mk(3), mk(11), mk(29));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)");
    }

    #[test]
    fn counters_round_trip_through_json() {
        let c = Counters {
            rounds_total: 42,
            fallback_anchor_drift: 3,
            adversary_checks: 7,
            ..Counters::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: Counters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
