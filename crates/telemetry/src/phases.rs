//! Wall-clock phase timers.
//!
//! A round passes through a fixed pipeline; each stage's wall-clock
//! duration (in microseconds) is recorded into one alloc-free
//! [`LatencyHistogram`] per phase. Everything here is *outside* the
//! determinism contract: timings vary run to run and must never feed
//! back into simulation state or byte-identity assertions.

use crate::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// The fixed round pipeline stages.
///
/// * `Advance` — mobility advance + intent collection (engine).
/// * `Geometry` — spatial-index maintenance and the RNG-free parallel
///   geometry pass (medium).
/// * `Finalize` — sequential receiver resolution / shard replay
///   (medium).
/// * `Deliver` — stats, trace capture, and protocol delivery (engine).
/// * `Checker` — scenario-level invariant checking / audit capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Advance,
    Geometry,
    Finalize,
    Deliver,
    Checker,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Advance,
        Phase::Geometry,
        Phase::Finalize,
        Phase::Deliver,
        Phase::Checker,
    ];

    /// Stable lowercase name (used in summaries, tables, traces).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Advance => "advance",
            Phase::Geometry => "geometry",
            Phase::Finalize => "finalize",
            Phase::Deliver => "deliver",
            Phase::Checker => "checker",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Advance => 0,
            Phase::Geometry => 1,
            Phase::Finalize => 2,
            Phase::Deliver => 3,
            Phase::Checker => 4,
        }
    }
}

/// One histogram per phase; `record` is a single bucket increment.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    hists: [LatencyHistogram; 5],
}

impl PhaseTimers {
    /// Records one phase duration in microseconds.
    pub fn record(&mut self, phase: Phase, micros: u64) {
        self.hists[phase.index()].record(micros);
    }

    /// The histogram for one phase.
    pub fn hist(&self, phase: Phase) -> &LatencyHistogram {
        &self.hists[phase.index()]
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimers) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// The phase-wise delta `self - earlier` (see
    /// [`LatencyHistogram::subtracting`]): `earlier` must be a prior
    /// snapshot of the same growing timers.
    pub fn subtracting(&self, earlier: &PhaseTimers) -> PhaseTimers {
        let mut d = self.clone();
        for (a, b) in d.hists.iter_mut().zip(&earlier.hists) {
            *a = a.subtracting(b);
        }
        d
    }

    /// Condenses the histograms into serializable per-phase rows.
    pub fn summary(&self) -> PhaseSummary {
        PhaseSummary {
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let h = self.hist(p);
                    // Quantiles of an unused phase are undefined (the
                    // histogram reports its sentinel); serialize them
                    // as 0 so "phase never ran" stays visibly inert
                    // in artifacts — `samples == 0` is the signal.
                    let q = |v: u64| if h.count() == 0 { 0 } else { v };
                    PhaseStats {
                        phase: p.name().to_string(),
                        samples: h.count(),
                        total_us: h.sum(),
                        p50_us: q(h.p50()),
                        p95_us: q(h.p95()),
                        p99_us: q(h.p99()),
                        max_us: h.max(),
                    }
                })
                .collect(),
        }
    }
}

/// Serializable wall-clock digest: one [`PhaseStats`] row per phase,
/// in pipeline order. All-integer so it survives the vendored JSON
/// round trip exactly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Rows in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStats>,
}

impl PhaseSummary {
    /// The row for a phase, if it was summarized.
    pub fn get(&self, phase: Phase) -> Option<&PhaseStats> {
        self.phases.iter().find(|s| s.phase == phase.name())
    }
}

/// Wall-clock digest of one phase (all durations in microseconds).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Number of recorded durations.
    pub samples: u64,
    /// Sum of all durations.
    pub total_us: u64,
    /// Median duration.
    pub p50_us: u64,
    /// 95th-percentile duration.
    pub p95_us: u64,
    /// 99th-percentile duration.
    pub p99_us: u64,
    /// Largest duration.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_the_right_phase() {
        let mut t = PhaseTimers::default();
        t.record(Phase::Geometry, 50);
        t.record(Phase::Geometry, 60);
        t.record(Phase::Deliver, 5);
        assert_eq!(t.hist(Phase::Geometry).count(), 2);
        assert_eq!(t.hist(Phase::Deliver).count(), 1);
        assert_eq!(t.hist(Phase::Advance).count(), 0);
    }

    #[test]
    fn summary_has_one_row_per_phase_in_order() {
        let mut t = PhaseTimers::default();
        t.record(Phase::Checker, 1000);
        let s = t.summary();
        assert_eq!(s.phases.len(), Phase::ALL.len());
        for (row, phase) in s.phases.iter().zip(Phase::ALL) {
            assert_eq!(row.phase, phase.name());
        }
        let checker = s.get(Phase::Checker).unwrap();
        assert_eq!(checker.samples, 1);
        assert_eq!(checker.total_us, 1000);
        assert!(checker.p50_us > 0);
        // Unused phases serialize inert zero rows, not the histogram's
        // empty-quantile sentinel.
        let advance = s.get(Phase::Advance).unwrap();
        assert_eq!(advance.samples, 0);
        assert_eq!(advance.p50_us, 0);
        assert_eq!(advance.p99_us, 0);
    }

    #[test]
    fn merge_accumulates_across_timers() {
        let mut a = PhaseTimers::default();
        let mut b = PhaseTimers::default();
        a.record(Phase::Advance, 10);
        b.record(Phase::Advance, 20);
        b.record(Phase::Finalize, 30);
        a.merge(&b);
        assert_eq!(a.hist(Phase::Advance).count(), 2);
        assert_eq!(a.hist(Phase::Advance).sum(), 30);
        assert_eq!(a.hist(Phase::Finalize).count(), 1);
    }

    #[test]
    fn subtract_inverts_merge_per_phase() {
        let mut a = PhaseTimers::default();
        let mut b = PhaseTimers::default();
        a.record(Phase::Advance, 10);
        a.record(Phase::Geometry, 55);
        b.record(Phase::Advance, 20);
        b.record(Phase::Finalize, 30);
        let mut total = a.clone();
        total.merge(&b);
        let d = total.subtracting(&a);
        for p in Phase::ALL {
            assert_eq!(
                d.hist(p).bucket_counts(),
                b.hist(p).bucket_counts(),
                "phase {} buckets",
                p.name()
            );
            assert_eq!(d.hist(p).sum(), b.hist(p).sum());
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut t = PhaseTimers::default();
        t.record(Phase::Geometry, 123);
        t.record(Phase::Geometry, 456);
        let s = t.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: PhaseSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
