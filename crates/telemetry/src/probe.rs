//! The probe handle threaded through the engine.
//!
//! A [`Probe`] is either *null* (the default — every operation is one
//! branch on an `Option` and returns immediately) or *live* (a shared
//! handle onto one run's counters and phase timers). The engine,
//! medium, and scenario layer each hold a clone of the same probe, so
//! all instrumentation lands in one [`TelemetrySummary`].
//!
//! `Rc<RefCell<_>>` (not `Arc<Mutex<_>>`) is deliberate: every engine
//! is constructed, stepped, and consumed on a single thread (sweep
//! workers own their engines outright; the shard pool parallelizes
//! *inside* a round, below the probe). Keeping the handle `!Send`
//! makes that invariant a compile error instead of a data race.

use crate::counters::Counters;
use crate::phases::{Phase, PhaseTimers};
use crate::TelemetrySummary;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

#[derive(Debug, Default)]
struct TelemetryState {
    counters: Counters,
    phases: PhaseTimers,
    sharded_rounds: u64,
}

/// Cloneable telemetry handle; null by default.
#[derive(Clone, Debug, Default)]
pub struct Probe {
    state: Option<Rc<RefCell<TelemetryState>>>,
}

impl Probe {
    /// The null probe: every operation is a single branch, no
    /// allocation anywhere (this is the hot-path default).
    pub fn disabled() -> Self {
        Probe { state: None }
    }

    /// A live probe with fresh counters and timers.
    pub fn enabled() -> Self {
        Probe {
            state: Some(Rc::new(RefCell::new(TelemetryState::default()))),
        }
    }

    /// Whether this probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Applies `f` to the counters — a no-op on a null probe, so
    /// increment sites read `probe.count(|c| c.rounds_total += 1)`.
    #[inline]
    pub fn count(&self, f: impl FnOnce(&mut Counters)) {
        if let Some(state) = &self.state {
            f(&mut state.borrow_mut().counters);
        }
    }

    /// Notes one round resolved on the sharded path (wall-clock-side:
    /// sharding depends on the worker count).
    #[inline]
    pub fn add_sharded_round(&self) {
        if let Some(state) = &self.state {
            state.borrow_mut().sharded_rounds += 1;
        }
    }

    /// Starts a phase timer — `None` on a null probe, so the disabled
    /// path never calls `Instant::now()`.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.state.as_ref().map(|_| Instant::now())
    }

    /// Records the time elapsed since a [`Probe::timer`] start into
    /// `phase`'s histogram. A `None` start (null probe) is a no-op.
    #[inline]
    pub fn phase_since(&self, phase: Phase, start: Option<Instant>) {
        if let (Some(state), Some(start)) = (&self.state, start) {
            let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            state.borrow_mut().phases.record(phase, micros);
        }
    }

    /// A copy of the deterministic counters, if live.
    pub fn counters(&self) -> Option<Counters> {
        self.state.as_ref().map(|s| s.borrow().counters)
    }

    /// A copy of the raw phase timers, if live — the monitor snapshots
    /// these to compute per-window histogram deltas (the condensed
    /// [`crate::PhaseSummary`] loses the buckets, so deltas need the
    /// timers themselves).
    pub fn phase_timers(&self) -> Option<PhaseTimers> {
        self.state.as_ref().map(|s| s.borrow().phases.clone())
    }

    /// The full summary (counters + phase digest), if live.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        self.state.as_ref().map(|s| {
            let state = s.borrow();
            TelemetrySummary {
                counters: state.counters,
                phases: state.phases.summary(),
                sharded_rounds: state.sharded_rounds,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_records_nothing() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        p.count(|c| c.rounds_total += 1);
        p.add_sharded_round();
        assert!(p.timer().is_none());
        p.phase_since(Phase::Advance, None);
        assert!(p.counters().is_none());
        assert!(p.summary().is_none());
    }

    #[test]
    fn clones_share_one_state() {
        let p = Probe::enabled();
        let q = p.clone();
        p.count(|c| c.rounds_total += 1);
        q.count(|c| c.rounds_total += 1);
        q.add_sharded_round();
        let summary = p.summary().unwrap();
        assert_eq!(summary.counters.rounds_total, 2);
        assert_eq!(summary.sharded_rounds, 1);
    }

    #[test]
    fn phase_timer_lands_in_summary() {
        let p = Probe::enabled();
        let t = p.timer();
        assert!(t.is_some());
        p.phase_since(Phase::Geometry, t);
        let summary = p.summary().unwrap();
        let geom = summary.phases.get(Phase::Geometry).unwrap();
        assert_eq!(geom.samples, 1);
    }
}
