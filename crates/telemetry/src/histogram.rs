//! Fixed-bucket log-scale histograms.
//!
//! The histogram is the hot-path aggregation structure of both the
//! traffic driver (one `record` per completed request) and the phase
//! timers (one `record` per round per phase): no allocation, no float
//! arithmetic. Buckets are log-linear (HDR-style): exact for small
//! values, four sub-buckets per power of two above that, so relative
//! quantile error is bounded by ~25% across the whole range while the
//! bucket count stays fixed.
//!
//! Histograms are **mergeable**: bucket counts are plain sums, so
//! aggregating per-seed histograms in job order yields byte-identical
//! results no matter how many sweep workers produced them (merging is
//! commutative and associative; the order is fixed by the job list).

use serde::{Deserialize, Serialize};

/// Values below this are counted in exact unit buckets.
const LINEAR_CUTOFF: u64 = 8;
/// Sub-buckets per power of two past the linear range.
const SUB_BUCKETS: u64 = 4;
/// Total fixed bucket count: 8 linear + 4 per octave for octaves
/// 3..=17 (values up to 2^18), plus one overflow bucket.
pub const BUCKETS: usize = 8 + 15 * 4 + 1;

/// Sentinel returned by [`LatencyHistogram::quantile`] (and the
/// `p50`/`p95`/`p99` shorthands) on an *empty* histogram. `u64::MAX`
/// cannot be confused with a real bucket floor, unlike the old
/// behavior of returning 0 — which is also the floor of the first
/// bucket and therefore ambiguous. Callers that serialize quantiles
/// should check [`LatencyHistogram::count`] first and substitute
/// their own "no data" representation.
pub const EMPTY_QUANTILE: u64 = u64::MAX;

/// The bucket index value `v` lands in.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    // Octave o >= 3 since v >= 8; sub-position from the two bits
    // below the leading one.
    let o = 63 - v.leading_zeros() as u64;
    let sub = (v >> (o - 2)) & (SUB_BUCKETS - 1);
    let idx = (LINEAR_CUTOFF + (o - 3) * SUB_BUCKETS + sub) as usize;
    idx.min(BUCKETS - 1)
}

/// The smallest value mapping to bucket `b` (the histogram's
/// deterministic quantile representative).
fn bucket_floor(b: usize) -> u64 {
    if b < LINEAR_CUTOFF as usize {
        return b as u64;
    }
    let rel = b as u64 - LINEAR_CUTOFF;
    let o = rel / SUB_BUCKETS + 3;
    let sub = rel % SUB_BUCKETS;
    (1 << o) + (sub << (o - 2))
}

/// A fixed-bucket log-linear histogram (latencies in virtual rounds,
/// phase durations in microseconds — the unit is the caller's).
/// `record` is allocation-free; `merge` is a bucket-wise sum.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (always `BUCKETS` long).
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Sum of all recorded values (for the mean).
    sum: u64,
    /// Largest value recorded (exact, not bucketed).
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The bucket-wise difference `self - earlier`, for snapshot
    /// deltas: `earlier` must be a previous snapshot of the same
    /// growing histogram, so every bucket of `self` dominates. Bucket
    /// counts, total count, and sum subtract exactly; the maximum is
    /// not recoverable from buckets alone, so the delta's `max` is 0
    /// when the delta is empty and otherwise `self.max` — an upper
    /// bound, exact whenever the overall maximum landed inside the
    /// window. Subtraction saturates rather than panicking so a
    /// mismatched pair cannot poison the monitoring path.
    pub fn subtracting(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut d = self.clone();
        for (a, b) in d.counts.iter_mut().zip(&earlier.counts) {
            *a = a.saturating_sub(*b);
        }
        d.count = d.count.saturating_sub(earlier.count);
        d.sum = d.sum.saturating_sub(earlier.sum);
        d.max = if d.count == 0 { 0 } else { self.max };
        d
    }

    /// The raw per-bucket sample counts (always [`BUCKETS`] long) —
    /// for bucket-exact assertions on delta round-trips.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum value seen (0 on an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean value (0.0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile value (`0.0 < q <= 1.0`), as the floor of
    /// the bucket containing the `ceil(q·count)`-th smallest sample;
    /// [`EMPTY_QUANTILE`] on an empty histogram (a quantile of no
    /// samples is undefined — the sentinel makes that unmistakable).
    /// Deterministic by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return EMPTY_QUANTILE;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket is open-ended; report the exact max.
                return if b == BUCKETS - 1 {
                    self.max
                } else {
                    bucket_floor(b)
                };
            }
        }
        self.max
    }

    /// Median value.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile value.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile value.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= prev || b == BUCKETS - 1, "bucket regressed at {v}");
            prev = prev.max(b);
            // The floor of v's bucket never exceeds v.
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn floors_invert_buckets_exactly() {
        for b in 0..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(b)), b, "floor of bucket {b}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.p50(), 2, "3rd smallest of 0,1,2,3,3,7");
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.25, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..500u64 {
            if v % 3 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal single-pass recording");
    }

    #[test]
    fn empty_histogram_reports_the_quantile_sentinel() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        // Quantiles of zero samples are undefined: every shorthand
        // reports the documented sentinel, never a bucket floor.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), EMPTY_QUANTILE, "q={q}");
        }
        assert_eq!(h.p50(), EMPTY_QUANTILE);
        assert_eq!(h.p95(), EMPTY_QUANTILE);
        assert_eq!(h.p99(), EMPTY_QUANTILE);
        // One sample flips every quantile back to a real value.
        let mut h = h;
        h.record(4);
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p99(), 4);
    }

    #[test]
    fn subtract_round_trips_merge_bucket_exactly() {
        // (a ⊕ b) ⊖ a == b, bucket-exact: every bucket count, the
        // total count, and the sum must match; max is an upper bound
        // by contract, exact here because b holds the global max.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..400u64 {
            // v = 399 (the global max) lands in b, so the delta's
            // upper-bound max is exact here.
            if v % 3 == 0 {
                b.record(v * 5);
            } else {
                a.record(v * 5);
            }
        }
        let mut total = a.clone();
        total.merge(&b);
        let d = total.subtracting(&a);
        assert_eq!(d.bucket_counts(), b.bucket_counts(), "bucket counts");
        assert_eq!(d.count(), b.count());
        assert_eq!(d.sum(), b.sum());
        assert_eq!(d.max(), b.max(), "b holds the global max: exact");
        // Subtracting the whole thing leaves the empty histogram.
        let z = total.subtracting(&total);
        assert_eq!(z.count(), 0);
        assert_eq!(z.sum(), 0);
        assert_eq!(z.max(), 0, "empty delta pins max to 0");
        assert!(z.bucket_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn subtract_reports_upper_bound_max_for_windows() {
        let mut earlier = LatencyHistogram::new();
        earlier.record(1_000);
        let mut later = earlier.clone();
        later.record(3);
        let d = later.subtracting(&earlier);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum(), 3);
        // The window's true max (3) is unrecoverable; the documented
        // contract is the run max as an upper bound.
        assert_eq!(d.max(), 1_000);
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 5, 900, 12, 77, 100_000] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
