//! Live monitoring: periodic telemetry snapshots streamed to sinks.
//!
//! PRs 7–8 made runs explainable *after the fact*; this module adds
//! the streaming half. A [`Monitor`] handle rides the engine's
//! sequential control path and every K rounds packages the activity
//! since the previous sample into a [`TelemetrySnapshot`] — counter
//! deltas ([`Counters::delta`]), phase-histogram deltas
//! ([`crate::PhaseTimers::subtracting`]), and the in-flight traffic
//! picture ([`TrafficProgress`]) — then fans it out through every
//! installed [`MonitorSink`]:
//!
//! * [`JsonlSink`] — one JSON event per line, line-buffered so each
//!   snapshot is durable the moment it is sampled
//!   (`VI_MONITOR_LOG=out.jsonl`).
//! * [`RingSink`] — a bounded in-memory ring for programmatic
//!   inspection (tests, embedders).
//! * [`PrometheusExporter`] — a background `std::net::TcpListener`
//!   serving the text exposition format on `GET /metrics`
//!   (`VI_MONITOR_ADDR=127.0.0.1:9464`). The metric set is generated
//!   from [`Counters::rows`], so it can never drift from the counter
//!   registry.
//!
//! The PR 7 contract holds throughout: snapshots live on the
//! wall-clock side (sampling never feeds back into simulation state),
//! the counters *inside* them are byte-identical at any worker count
//! (they are read on the sequential path at deterministic round
//! boundaries), and a disabled monitor costs one branch per round and
//! zero allocations.

use crate::counters::Counters;
use crate::phases::{PhaseSummary, PhaseTimers};
use crate::probe::Probe;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, LineWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default sampling period (rounds between snapshots) when monitoring
/// is requested without an explicit `VI_MONITOR_EVERY`.
pub const DEFAULT_EVERY: u64 = 64;

/// The in-flight traffic picture at a snapshot: cumulative totals plus
/// the live latency quantiles of every request completed so far.
/// Quantiles are 0 until the first completion (the histogram's empty
/// sentinel never leaks into exported snapshots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficProgress {
    /// Requests issued so far.
    pub issued: u64,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests that exceeded their deadline so far.
    pub timed_out: u64,
    /// Requests currently outstanding.
    pub in_flight: u64,
    /// Live median completion latency (virtual rounds).
    pub p50: u64,
    /// Live 95th-percentile completion latency (virtual rounds).
    pub p95: u64,
}

/// One periodic sample of a running scenario.
///
/// `counters_delta` is the deterministic activity since the previous
/// snapshot and `counters_total` the running total; merging the deltas
/// of a run in `seq` order reconstructs the final totals exactly (the
/// E21 experiment and the reconciliation proptest assert this).
/// `phases_delta` is wall-clock and therefore noise; everything else
/// is deterministic at any worker count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Scenario name.
    pub scenario: String,
    /// Simulation seed.
    pub seed: u64,
    /// Snapshot sequence number within the run (1-based).
    pub seq: u64,
    /// The round at which the sample was taken.
    pub round: u64,
    /// Whether this is the run's final snapshot (emitted by
    /// [`Monitor::finish`] after the checker phase).
    pub last: bool,
    /// Deterministic counter activity since the previous snapshot.
    pub counters_delta: Counters,
    /// Deterministic running totals at `round`.
    pub counters_total: Counters,
    /// Wall-clock phase activity since the previous snapshot.
    pub phases_delta: PhaseSummary,
    /// In-flight traffic summary (traffic workloads only).
    pub traffic: Option<TrafficProgress>,
}

/// Sweep job lifecycle states, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// The job is in the sweep's work list.
    Queued,
    /// A worker picked the job up.
    Started,
    /// The job produced its outcome.
    Finished {
        /// FNV-1a digest of the outcome's JSON serialization —
        /// deterministic for a fixed `(spec, seed)`, so digests can be
        /// compared across worker counts and across runs.
        digest: u64,
    },
}

/// One sweep-progress event. Workers interleave in wall-clock order,
/// but every event carries its deterministic `job` index (position in
/// the sweep's job list), so consumers that order by `(job, state)`
/// see the same sequence at any worker count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Index of the job in the sweep's job list.
    pub job: u64,
    /// Scenario name of the job.
    pub scenario: String,
    /// Seed of the job.
    pub seed: u64,
    /// Lifecycle state reached.
    pub state: JobState,
}

/// Anything a sink can receive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MonitorEvent {
    /// A periodic scenario sample (boxed: snapshots dwarf job
    /// events, and events are moved through sinks by reference).
    Snapshot(Box<TelemetrySnapshot>),
    /// A sweep job lifecycle transition.
    Job(JobEvent),
}

/// A streaming consumer of [`MonitorEvent`]s. Sinks are shared across
/// sweep workers, so they must be `Send + Sync`; `emit` must never
/// block the simulation for long (buffer, don't wait).
pub trait MonitorSink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: &MonitorEvent);
    /// Flushes buffered output (end of run / sweep).
    fn flush(&self) {}
}

/// An immutable, cheaply clonable set of sinks — the fan-out target a
/// [`Monitor`] holds for the duration of one run.
#[derive(Clone, Default)]
pub struct SinkSet {
    sinks: Arc<Vec<Arc<dyn MonitorSink>>>,
}

impl SinkSet {
    /// The empty set (every emit is a no-op).
    pub fn empty() -> Self {
        SinkSet::default()
    }

    /// A set over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn MonitorSink>>) -> Self {
        SinkSet {
            sinks: Arc::new(sinks),
        }
    }

    /// Whether the set has no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Fans `event` out to every sink.
    pub fn emit(&self, event: &MonitorEvent) {
        for sink in self.sinks.iter() {
            sink.emit(event);
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in self.sinks.iter() {
            sink.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// JSONL event log: one [`MonitorEvent`] as one JSON object per line.
/// The writer is line-buffered ([`LineWriter`]), so every line reaches
/// the OS as soon as it is complete — a crash loses at most the event
/// being written, never the log.
pub struct JsonlSink {
    out: Mutex<LineWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) the log file at `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(LineWriter::new(file)),
        })
    }
}

impl MonitorSink for JsonlSink {
    fn emit(&self, event: &MonitorEvent) {
        if let Ok(json) = serde_json::to_string(event) {
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(out, "{json}");
        }
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

/// Bounded in-memory ring of the most recent events, for programmatic
/// inspection. Past `cap`, the oldest events are evicted.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<MonitorEvent>>,
}

impl RingSink {
    /// A ring retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<MonitorEvent> {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MonitorSink for RingSink {
    fn emit(&self, event: &MonitorEvent) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// The live state a [`PrometheusExporter`] renders: the latest sample
/// per `(scenario, seed)` plus sweep job tallies.
#[derive(Default)]
struct ExportState {
    /// Latest `(round, totals, traffic)` per scenario run.
    scenarios: BTreeMap<(String, u64), (u64, Counters, Option<TrafficProgress>)>,
    jobs_queued: u64,
    jobs_started: u64,
    jobs_finished: u64,
}

/// Prometheus text-format `/metrics` exporter on a background thread,
/// built on `std::net::TcpListener` only (no new dependencies). The
/// exporter is itself a [`MonitorSink`]: snapshots update its state,
/// and every `GET` renders the current state in the text exposition
/// format (version 0.0.4). Counter metric names are generated from
/// [`Counters::rows`], so the exposition can never drift from the
/// counter registry.
pub struct PrometheusExporter {
    state: Arc<Mutex<ExportState>>,
    addr: std::net::SocketAddr,
}

impl PrometheusExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, or port 0 for an
    /// ephemeral port — see [`PrometheusExporter::addr`]) and starts
    /// the accept loop on a detached background thread. The thread
    /// serves for the rest of the process; scrapes are cheap reads of
    /// shared state.
    pub fn bind(addr: &str) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let exporter = Arc::new(PrometheusExporter {
            state: Arc::new(Mutex::new(ExportState::default())),
            addr,
        });
        let state = Arc::clone(&exporter.state);
        std::thread::Builder::new()
            .name("vi-monitor-exporter".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let _ = serve_one(stream, &state);
                }
            })?;
        Ok(exporter)
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Renders the current state as Prometheus text exposition.
    fn render(state: &ExportState) -> String {
        let mut out = String::new();
        // Counter metrics, one family per Counters row. Families are
        // emitted even when no scenario reported yet, so a scrape
        // right after startup is still well-formed.
        let names: Vec<&'static str> = Counters::default()
            .rows()
            .iter()
            .map(|&(name, _)| name)
            .collect();
        for (i, name) in names.iter().enumerate() {
            out.push_str(&format!("# TYPE vi_{name} counter\n"));
            for ((scenario, seed), (_, counters, _)) in &state.scenarios {
                let value = counters.rows()[i].1;
                out.push_str(&format!(
                    "vi_{name}{{scenario=\"{scenario}\",seed=\"{seed}\"}} {value}\n"
                ));
            }
        }
        // Per-run gauges: current round and the traffic picture.
        out.push_str("# TYPE vi_round gauge\n");
        for ((scenario, seed), (round, _, _)) in &state.scenarios {
            out.push_str(&format!(
                "vi_round{{scenario=\"{scenario}\",seed=\"{seed}\"}} {round}\n"
            ));
        }
        for (metric, pick) in [
            ("vi_traffic_issued", 0usize),
            ("vi_traffic_completed", 1),
            ("vi_traffic_timed_out", 2),
            ("vi_traffic_in_flight", 3),
            ("vi_traffic_p50_rounds", 4),
            ("vi_traffic_p95_rounds", 5),
        ] {
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            for ((scenario, seed), (_, _, traffic)) in &state.scenarios {
                let Some(t) = traffic else { continue };
                let value = [
                    t.issued,
                    t.completed,
                    t.timed_out,
                    t.in_flight,
                    t.p50,
                    t.p95,
                ][pick];
                out.push_str(&format!(
                    "{metric}{{scenario=\"{scenario}\",seed=\"{seed}\"}} {value}\n"
                ));
            }
        }
        // Sweep progress gauges.
        out.push_str(&format!(
            "# TYPE vi_sweep_jobs_queued gauge\nvi_sweep_jobs_queued {}\n",
            state.jobs_queued
        ));
        out.push_str(&format!(
            "# TYPE vi_sweep_jobs_started gauge\nvi_sweep_jobs_started {}\n",
            state.jobs_started
        ));
        out.push_str(&format!(
            "# TYPE vi_sweep_jobs_finished gauge\nvi_sweep_jobs_finished {}\n",
            state.jobs_finished
        ));
        out
    }
}

impl MonitorSink for PrometheusExporter {
    fn emit(&self, event: &MonitorEvent) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match event {
            MonitorEvent::Snapshot(s) => {
                state.scenarios.insert(
                    (s.scenario.clone(), s.seed),
                    (s.round, s.counters_total, s.traffic),
                );
            }
            MonitorEvent::Job(j) => match j.state {
                JobState::Queued => state.jobs_queued += 1,
                JobState::Started => state.jobs_started += 1,
                JobState::Finished { .. } => state.jobs_finished += 1,
            },
        }
    }
}

/// Serves one HTTP exchange: reads the request line (any path is
/// answered with the metrics — the exporter serves nothing else),
/// writes an HTTP/1.0 response, closes.
fn serve_one(stream: TcpStream, state: &Mutex<ExportState>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the remaining headers so the peer sees a clean exchange.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = {
        let state = state.lock().unwrap_or_else(|e| e.into_inner());
        PrometheusExporter::render(&state)
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )?;
    stream.flush()
}

/// Scrapes `GET /metrics` from an exporter at `addr` and returns the
/// response body — the client half used by `repro monitor` and the CI
/// smoke, built on `std::net::TcpStream` only.
pub fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&target, std::time::Duration::from_secs(2))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

// ---------------------------------------------------------------------------
// Process-global sink registry (trace_export-style)
// ---------------------------------------------------------------------------

static SINKS: Mutex<Vec<Arc<dyn MonitorSink>>> = Mutex::new(Vec::new());
static HAVE_SINKS: AtomicBool = AtomicBool::new(false);
static FORCED: AtomicBool = AtomicBool::new(false);
static ENV: OnceLock<EnvMonitor> = OnceLock::new();

struct EnvMonitor {
    requested: bool,
    every: u64,
}

/// Reads the monitoring environment once: `VI_MONITOR_LOG=out.jsonl`
/// installs a [`JsonlSink`], `VI_MONITOR_ADDR=host:port` binds a
/// [`PrometheusExporter`], `VI_MONITOR_EVERY=K` overrides the
/// sampling period (default [`DEFAULT_EVERY`]). Failures warn on
/// stderr and leave monitoring off rather than failing the run.
fn env_monitor() -> &'static EnvMonitor {
    ENV.get_or_init(|| {
        let mut requested = false;
        if let Ok(path) = std::env::var("VI_MONITOR_LOG") {
            if !path.is_empty() {
                match JsonlSink::create(&path) {
                    Ok(sink) => {
                        install_sink(Arc::new(sink));
                        requested = true;
                    }
                    Err(e) => eprintln!("vi-monitor: cannot open {path}: {e}"),
                }
            }
        }
        if let Ok(addr) = std::env::var("VI_MONITOR_ADDR") {
            if !addr.is_empty() {
                match PrometheusExporter::bind(&addr) {
                    Ok(exporter) => {
                        eprintln!("vi-monitor: serving /metrics on {}", exporter.addr());
                        install_sink(exporter);
                        requested = true;
                    }
                    Err(e) => eprintln!("vi-monitor: cannot bind {addr}: {e}"),
                }
            }
        }
        let every = std::env::var("VI_MONITOR_EVERY")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_EVERY);
        EnvMonitor { requested, every }
    })
}

/// Adds a sink to the process-global registry. Every monitored run
/// and sweep started afterwards fans out to it.
pub fn install_sink(sink: Arc<dyn MonitorSink>) {
    let mut sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    sinks.push(sink);
    HAVE_SINKS.store(true, Ordering::Relaxed);
}

/// Removes every installed sink (tests).
pub fn clear_sinks() {
    let mut sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    sinks.clear();
    HAVE_SINKS.store(false, Ordering::Relaxed);
}

/// Removes one specific sink (by identity), leaving the others —
/// environment-installed sinks included — in place. Used by callers
/// that install a temporary sink around one sweep.
pub fn uninstall_sink(sink: &Arc<dyn MonitorSink>) {
    let mut sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    sinks.retain(|s| !Arc::ptr_eq(s, sink));
    if sinks.is_empty() {
        HAVE_SINKS.store(false, Ordering::Relaxed);
    }
}

/// Whether any sink is installed or configured. The first call reads
/// the `VI_MONITOR_*` environment (installing its sinks), so sweeps
/// and explicitly-tuned runs see environment sinks no matter which
/// entry point touches monitoring first; afterwards this is one
/// `OnceLock` probe plus a relaxed load — the disabled path stays
/// effectively free.
pub fn have_sinks() -> bool {
    env_monitor();
    HAVE_SINKS.load(Ordering::Relaxed)
}

/// A snapshot of the installed sinks.
pub fn installed_sinks() -> SinkSet {
    if !have_sinks() {
        return SinkSet::empty();
    }
    let sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    SinkSet::new(sinks.clone())
}

/// Turns monitoring on for the rest of the process regardless of the
/// environment (the `repro --monitor` flag and embedders).
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// The effective sampling period for a run whose tuning asks for
/// `explicit` (0 = "not set on the tuning"): an explicit period wins;
/// otherwise monitoring runs at the environment period when requested
/// via `VI_MONITOR_LOG` / `VI_MONITOR_ADDR` / [`force_enable`]; else
/// 0 (off). Reading the environment happens once, lazily.
pub fn effective_every(explicit: u64) -> u64 {
    if explicit > 0 {
        return explicit;
    }
    if FORCED.load(Ordering::Relaxed) {
        return env_monitor().every;
    }
    // Plain runs only pay an env read on the first call.
    let env = env_monitor();
    if env.requested {
        env.every
    } else {
        0
    }
}

/// Emits one event to every installed sink (sweep workers).
pub fn emit_global(event: &MonitorEvent) {
    installed_sinks().emit(event);
}

/// Flushes every installed sink (end of sweep).
pub fn flush_global() {
    installed_sinks().flush();
}

/// FNV-1a digest of `bytes` — the deterministic outcome digest carried
/// by [`JobState::Finished`].
pub fn outcome_digest(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// The per-run Monitor handle
// ---------------------------------------------------------------------------

struct MonitorInner {
    scenario: String,
    seed: u64,
    every: u64,
    probe: Probe,
    sinks: SinkSet,
    last_counters: Counters,
    last_phases: PhaseTimers,
    traffic: Option<TrafficProgress>,
    seq: u64,
    last_round: u64,
}

impl MonitorInner {
    /// Samples the probe, packages the delta since the previous
    /// sample, and emits it.
    fn snap(&mut self, round: u64, last: bool) {
        let total = self.probe.counters().unwrap_or_default();
        let phases = self.probe.phase_timers().unwrap_or_default();
        self.seq += 1;
        let snapshot = TelemetrySnapshot {
            scenario: self.scenario.clone(),
            seed: self.seed,
            seq: self.seq,
            round,
            last,
            counters_delta: total.delta(&self.last_counters),
            counters_total: total,
            phases_delta: phases.subtracting(&self.last_phases).summary(),
            traffic: self.traffic,
        };
        self.last_counters = total;
        self.last_phases = phases;
        self.last_round = round;
        self.sinks.emit(&MonitorEvent::Snapshot(Box::new(snapshot)));
    }
}

/// Cloneable per-run monitoring handle; null by default, mirroring
/// [`Probe`]. Like the probe it is deliberately `!Send`
/// (`Rc<RefCell<_>>`): a run is stepped on one thread, and the handle
/// samples that thread's probe — only the *sinks* cross threads.
#[derive(Clone, Default)]
pub struct Monitor {
    state: Option<Rc<RefCell<MonitorInner>>>,
}

impl Monitor {
    /// The null monitor: every hook is a single branch, no
    /// allocation (the hot-path default).
    pub fn disabled() -> Self {
        Monitor { state: None }
    }

    /// A live monitor sampling `probe` every `every` rounds into
    /// `sinks`.
    pub fn enabled(scenario: &str, seed: u64, every: u64, probe: Probe, sinks: SinkSet) -> Self {
        Monitor {
            state: Some(Rc::new(RefCell::new(MonitorInner {
                scenario: scenario.to_string(),
                seed,
                every: every.max(1),
                probe,
                sinks,
                last_counters: Counters::default(),
                last_phases: PhaseTimers::default(),
                traffic: None,
                seq: 0,
                last_round: 0,
            }))),
        }
    }

    /// Whether this monitor samples anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Round hook, called by the engine after round `round` resolves
    /// (sequential control path). Samples every `every`-th round; one
    /// branch and an immediate return when disabled.
    #[inline]
    pub fn on_round(&self, round: u64) {
        let Some(state) = &self.state else { return };
        let mut inner = state.borrow_mut();
        inner.last_round = round;
        if round.is_multiple_of(inner.every) {
            inner.snap(round, false);
        }
    }

    /// Traffic-round hook, called by the traffic driver after virtual
    /// round `vr`. `progress` is only evaluated on a live monitor, so
    /// the disabled path never builds the summary.
    #[inline]
    pub fn traffic_round(&self, vr: u64, progress: impl FnOnce() -> TrafficProgress) {
        let Some(state) = &self.state else { return };
        let mut inner = state.borrow_mut();
        inner.traffic = Some(progress());
        inner.last_round = vr;
        if vr.is_multiple_of(inner.every) {
            inner.snap(vr, false);
        }
    }

    /// Emits the run's final snapshot (marked `last: true`, at the
    /// last observed round) and flushes the sinks. Call after the
    /// checker phase so the final sample covers the whole run.
    pub fn finish(&self) {
        let Some(state) = &self.state else { return };
        let mut inner = state.borrow_mut();
        let round = inner.last_round;
        inner.snap(round, true);
        inner.sinks.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::Phase;

    fn probe_with(rounds: u64) -> Probe {
        let p = Probe::enabled();
        p.count(|c| {
            c.rounds_total = rounds;
            c.rounds_steady = rounds;
        });
        p
    }

    #[test]
    fn null_monitor_is_inert() {
        let m = Monitor::disabled();
        assert!(!m.is_enabled());
        m.on_round(64);
        m.traffic_round(64, || panic!("must not evaluate progress"));
        m.finish();
    }

    #[test]
    fn snapshots_sample_on_the_period_and_deltas_reconcile() {
        let ring = Arc::new(RingSink::with_capacity(64));
        let sinks = SinkSet::new(vec![ring.clone()]);
        let probe = Probe::enabled();
        let m = Monitor::enabled("t", 7, 4, probe.clone(), sinks);
        for round in 1..=10u64 {
            probe.count(|c| {
                c.rounds_total += 1;
                c.grid_queries += round;
            });
            probe.phase_since(Phase::Advance, probe.timer());
            m.on_round(round);
        }
        m.finish();
        let events = ring.events();
        // Rounds 4 and 8 sample, finish adds the last snapshot at 10.
        let snaps: Vec<&TelemetrySnapshot> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Snapshot(s) => Some(s.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(snaps.len(), 3);
        assert_eq!(
            snaps.iter().map(|s| s.round).collect::<Vec<_>>(),
            vec![4, 8, 10]
        );
        assert_eq!(
            snaps.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(snaps[2].last && !snaps[0].last && !snaps[1].last);
        // Deltas merge back into the final totals, exactly.
        let mut merged = Counters::default();
        for s in &snaps {
            merged.merge(&s.counters_delta);
        }
        assert_eq!(merged, snaps[2].counters_total);
        assert_eq!(merged, probe.counters().unwrap());
        assert_eq!(merged.rounds_total, 10);
        assert_eq!(merged.grid_queries, 55);
    }

    #[test]
    fn ring_sink_evicts_oldest_past_capacity() {
        let ring = RingSink::with_capacity(2);
        for job in 0..4u64 {
            ring.emit(&MonitorEvent::Job(JobEvent {
                job,
                scenario: "s".to_string(),
                seed: 0,
                state: JobState::Queued,
            }));
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        let jobs: Vec<u64> = events
            .iter()
            .map(|e| match e {
                MonitorEvent::Job(j) => j.job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(jobs, vec![2, 3], "oldest evicted first");
    }

    #[test]
    fn jsonl_sink_writes_one_valid_json_object_per_line() {
        let dir = std::env::temp_dir().join("vi_monitor_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let sink = JsonlSink::create(&path_str).unwrap();
        sink.emit(&MonitorEvent::Job(JobEvent {
            job: 0,
            scenario: "a".to_string(),
            seed: 1,
            state: JobState::Queued,
        }));
        sink.emit(&MonitorEvent::Job(JobEvent {
            job: 0,
            scenario: "a".to_string(),
            seed: 1,
            state: JobState::Finished { digest: 42 },
        }));
        sink.flush();
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let back: MonitorEvent = serde_json::from_str(line).expect("line is valid JSON");
            match back {
                MonitorEvent::Job(j) => assert_eq!(j.scenario, "a"),
                _ => panic!("unexpected event"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exporter_serves_prometheus_text_from_counters_rows() {
        let exporter = PrometheusExporter::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = exporter.addr().to_string();
        let probe = probe_with(128);
        let m = Monitor::enabled("metro", 3, 64, probe, SinkSet::new(vec![exporter.clone()]));
        m.on_round(128);
        exporter.emit(&MonitorEvent::Job(JobEvent {
            job: 0,
            scenario: "metro".to_string(),
            seed: 3,
            state: JobState::Queued,
        }));
        let body = scrape_metrics(&addr).expect("scrape");
        assert!(
            body.contains("# TYPE vi_rounds_total counter"),
            "{body:.200}"
        );
        assert!(body.contains("vi_rounds_total{scenario=\"metro\",seed=\"3\"} 128"));
        assert!(body.contains("vi_round{scenario=\"metro\",seed=\"3\"} 128"));
        assert!(body.contains("vi_sweep_jobs_queued 1"));
        // Every Counters row has a metric family — generated, so a new
        // counter field is exported automatically.
        for (name, _) in Counters::default().rows() {
            assert!(
                body.contains(&format!("# TYPE vi_{name} counter")),
                "{name}"
            );
        }
    }

    #[test]
    fn outcome_digest_is_stable_fnv1a() {
        assert_eq!(outcome_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(outcome_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(outcome_digest(b"a"), outcome_digest(b"b"));
    }

    #[test]
    fn monitor_events_round_trip_through_json() {
        let ev = MonitorEvent::Snapshot(Box::new(TelemetrySnapshot {
            scenario: "s".to_string(),
            seed: 9,
            seq: 2,
            round: 128,
            last: true,
            counters_delta: Counters {
                rounds_total: 64,
                ..Counters::default()
            },
            counters_total: Counters {
                rounds_total: 128,
                ..Counters::default()
            },
            phases_delta: PhaseTimers::default().summary(),
            traffic: Some(TrafficProgress {
                issued: 10,
                completed: 8,
                timed_out: 1,
                in_flight: 1,
                p50: 3,
                p95: 7,
            }),
        }));
        let json = serde_json::to_string(&ev).unwrap();
        let back: MonitorEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
        let job = MonitorEvent::Job(JobEvent {
            job: 4,
            scenario: "s".to_string(),
            seed: 9,
            state: JobState::Finished { digest: 77 },
        });
        let json = serde_json::to_string(&job).unwrap();
        let back: MonitorEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, job);
    }
}
