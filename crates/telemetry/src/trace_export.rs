//! Perfetto/Chrome trace-event export.
//!
//! A process-global, thread-safe span collector writing the Chrome
//! trace-event JSON format (`{"traceEvents": [...]}`, complete
//! events, microsecond units) — the file opens directly in
//! `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Tracing is off unless the `VI_TRACE=out.json` environment variable
//! is set (checked once, cached) or [`enable_tracing`] is called
//! explicitly. When off, [`record_span`] is one relaxed atomic load.
//! The collector is bounded ([`MAX_EVENTS`]); spans past the cap are
//! counted in [`dropped_spans`] rather than silently lost.
//!
//! Span conventions used by the stack:
//! * `pid` [`PID_SWEEP`]: sweep-level spans — one `sweep-worker`
//!   lifetime span per worker plus one `job` span per `(spec, seed)`,
//!   with `tid` = sweep worker index.
//! * `pid` [`PID_POOL`]: shard-pool spans — one `shard-geometry` span
//!   per worker per sharded round, with `tid` = pool worker index.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// `pid` for sweep-runner spans (workers and jobs).
pub const PID_SWEEP: u64 = 1;
/// `pid` for shard-pool spans (per-round geometry work).
pub const PID_POOL: u64 = 2;

/// Collector capacity; spans past this are dropped (and counted).
pub const MAX_EVENTS: usize = 100_000;

/// One complete ("ph":"X") Chrome trace event. Microsecond units, as
/// the format requires.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span name (e.g. `"job"`, `"sweep-worker"`, `"shard-geometry"`).
    pub name: String,
    /// Category (e.g. `"sweep"`, `"pool"`).
    pub cat: String,
    /// Event phase; always `"X"` (complete event).
    pub ph: String,
    /// Start timestamp in µs since the trace epoch.
    pub ts: u64,
    /// Duration in µs.
    pub dur: u64,
    /// Process lane ([`PID_SWEEP`] or [`PID_POOL`]).
    pub pid: u64,
    /// Thread lane — the worker index.
    pub tid: u64,
}

/// Top-level JSON object; field name fixed by the trace format.
#[derive(Serialize, Deserialize)]
#[allow(non_snake_case)]
struct TraceFile {
    traceEvents: Vec<TraceEvent>,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static ENV_PATH: OnceLock<Option<String>> = OnceLock::new();

/// Microseconds since the first telemetry event of the process —
/// every span shares this epoch so lanes line up in the viewer.
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// The `VI_TRACE` output path, if set (read once and cached so the
/// hot path never touches the environment).
pub fn env_trace_path() -> Option<&'static str> {
    ENV_PATH
        .get_or_init(|| std::env::var("VI_TRACE").ok().filter(|p| !p.is_empty()))
        .as_deref()
}

/// Whether spans are currently collected.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || env_trace_path().is_some()
}

/// Turns span collection on for the rest of the process (tests and
/// embedders that don't use `VI_TRACE`).
pub fn enable_tracing() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Spans dropped because the collector was full.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Records one complete span. No-op unless tracing is enabled; never
/// blocks the simulation on a full buffer (drops + counts instead).
pub fn record_span(name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64, dur_us: u64) {
    if !tracing_enabled() {
        return;
    }
    let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: ts_us,
        dur: dur_us,
        pid,
        tid,
    });
}

/// Drains every collected span (primarily for tests; flushing uses it
/// internally so repeated flushes don't duplicate spans).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Writes all collected spans to `path` as Chrome trace JSON and
/// clears the collector. Returns the number of spans written.
pub fn flush_to_path(path: &str) -> std::io::Result<usize> {
    let events = take_events();
    let n = events.len();
    let json = serde_json::to_string(&TraceFile {
        traceEvents: events,
    })
    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(n)
}

/// Flushes to the `VI_TRACE` path if that variable is set; reports
/// the destination and span count on stderr so batch runs leave a
/// breadcrumb. Returns the span count written (0 when unset).
pub fn flush_env() -> usize {
    let Some(path) = env_trace_path() else {
        return 0;
    };
    match flush_to_path(path) {
        Ok(n) => {
            eprintln!("vi-telemetry: wrote {n} trace span(s) to {path}");
            n
        }
        Err(e) => {
            eprintln!("vi-telemetry: failed to write trace to {path}: {e}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so exercise it in ONE test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn collector_records_flushes_and_round_trips() {
        enable_tracing();
        assert!(tracing_enabled());
        take_events(); // isolate from any earlier spans

        let t0 = now_us();
        record_span("job", "sweep", PID_SWEEP, 0, t0, 150);
        record_span("shard-geometry", "pool", PID_POOL, 3, t0 + 10, 40);

        let dir = std::env::temp_dir().join("vi_telemetry_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_str = path.to_str().unwrap();
        let written = flush_to_path(path_str).unwrap();
        assert_eq!(written, 2);

        let raw = std::fs::read_to_string(&path).unwrap();
        let back: TraceFile = serde_json::from_str(&raw).unwrap();
        assert_eq!(back.traceEvents.len(), 2);
        let job = &back.traceEvents[0];
        assert_eq!(job.name, "job");
        assert_eq!(job.ph, "X");
        assert_eq!(job.pid, PID_SWEEP);
        assert_eq!(job.dur, 150);
        let shard = &back.traceEvents[1];
        assert_eq!(shard.tid, 3);
        assert_eq!(shard.pid, PID_POOL);

        // Flushing drained the collector.
        assert_eq!(take_events().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timestamps_are_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
