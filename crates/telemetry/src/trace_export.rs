//! Perfetto/Chrome trace-event export.
//!
//! A process-global, thread-safe span collector writing the Chrome
//! trace-event JSON format (`{"traceEvents": [...]}`, complete
//! events, microsecond units) — the file opens directly in
//! `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Tracing is off unless the `VI_TRACE=out.json` environment variable
//! is set (checked once, cached) or [`enable_tracing`] is called
//! explicitly. When off, [`record_span`] is one relaxed atomic load.
//! The collector is bounded ([`MAX_EVENTS`]); spans past the cap are
//! counted in [`dropped_spans`] rather than silently lost.
//!
//! Span conventions used by the stack:
//! * `pid` [`PID_SWEEP`]: sweep-level spans — one `sweep-worker`
//!   lifetime span per worker plus one `job` span per `(spec, seed)`,
//!   with `tid` = sweep worker index.
//! * `pid` [`PID_POOL`]: shard-pool spans — one `shard-geometry` span
//!   per worker per sharded round, with `tid` = pool worker index.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// `pid` for sweep-runner spans (workers and jobs).
pub const PID_SWEEP: u64 = 1;
/// `pid` for shard-pool spans (per-round geometry work).
pub const PID_POOL: u64 = 2;
/// `pid` for protocol-level causal spans and flows: synthetic
/// round-based timestamps (round `r` at `r·1000` µs), `tid` = node
/// index. See `vi_telemetry::causal::export_flows`.
pub const PID_PROTO: u64 = 3;

/// Collector capacity; spans past this are dropped (and counted).
pub const MAX_EVENTS: usize = 100_000;

/// One Chrome trace event: a complete span (`ph:"X"`) or a flow
/// endpoint (`ph:"s"` / `ph:"f"`). Microsecond units, as the format
/// requires.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span name (e.g. `"job"`, `"sweep-worker"`, `"shard-geometry"`).
    pub name: String,
    /// Category (e.g. `"sweep"`, `"pool"`).
    pub cat: String,
    /// Event phase: `"X"` (complete span), `"s"` (flow start), or
    /// `"f"` (flow finish).
    pub ph: String,
    /// Start timestamp in µs since the trace epoch.
    pub ts: u64,
    /// Duration in µs (0 for flow endpoints).
    pub dur: u64,
    /// Process lane ([`PID_SWEEP`], [`PID_POOL`], or [`PID_PROTO`]).
    pub pid: u64,
    /// Thread lane — the worker or node index.
    pub tid: u64,
    /// Flow id tying an `"s"` event to its `"f"` partner; 0 on
    /// complete spans (flow ids minted by the causal layer are never
    /// 0, so 0 unambiguously means "not a flow").
    pub id: u64,
}

/// Top-level JSON object; `traceEvents` is fixed by the trace format,
/// `truncated_events` is this collector's metadata (viewers ignore
/// unknown top-level fields): how many spans the bounded collector
/// dropped past [`MAX_EVENTS`] before this flush. 0 means the trace
/// is complete.
#[derive(Serialize, Deserialize)]
#[allow(non_snake_case)]
struct TraceFile {
    traceEvents: Vec<TraceEvent>,
    truncated_events: u64,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static DROP_WARNED: AtomicBool = AtomicBool::new(false);
static ENV_PATH: OnceLock<Option<String>> = OnceLock::new();

/// Microseconds since the first telemetry event of the process —
/// every span shares this epoch so lanes line up in the viewer.
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// The `VI_TRACE` output path, if set (read once and cached so the
/// hot path never touches the environment).
pub fn env_trace_path() -> Option<&'static str> {
    ENV_PATH
        .get_or_init(|| std::env::var("VI_TRACE").ok().filter(|p| !p.is_empty()))
        .as_deref()
}

/// Whether spans are currently collected.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || env_trace_path().is_some()
}

/// Turns span collection on for the rest of the process (tests and
/// embedders that don't use `VI_TRACE`).
pub fn enable_tracing() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Spans dropped because the collector was full.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Locks `events`, recovering from poisoning: a panicking tracer
/// thread must never take the whole collector down with it — the
/// spans gathered before the panic are exactly what a post-mortem
/// needs. Factored out so the recovery branch is directly testable.
fn recover(events: &Mutex<Vec<TraceEvent>>) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
    events.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pushes `ev` onto `events` unless it already holds `cap` entries;
/// returns whether the event was kept. Factored out so the cap
/// branch is directly testable against a local buffer.
fn push_bounded(events: &mut Vec<TraceEvent>, ev: TraceEvent, cap: usize) -> bool {
    if events.len() >= cap {
        return false;
    }
    events.push(ev);
    true
}

/// Records one event into the global collector, bumping the drop
/// counter past the cap. The first drop of the process warns once on
/// stderr — a truncated trace should never be a silent surprise.
fn record_event(ev: TraceEvent) {
    if !push_bounded(&mut recover(&EVENTS), ev, MAX_EVENTS) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        if !DROP_WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "vi-telemetry: trace collector full ({MAX_EVENTS} spans) — \
                 further spans are dropped and counted as truncated_events"
            );
        }
    }
}

/// Records one complete span. No-op unless tracing is enabled; never
/// blocks the simulation on a full buffer (drops + counts instead).
pub fn record_span(name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64, dur_us: u64) {
    if !tracing_enabled() {
        return;
    }
    record_event(TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: ts_us,
        dur: dur_us,
        pid,
        tid,
        id: 0,
    });
}

/// Records one flow endpoint (`ph` `"s"` or `"f"`; `id` ties the two
/// ends together). No-op unless tracing is enabled; same bounded
/// buffer as [`record_span`].
pub fn record_flow(name: &str, cat: &str, ph: &str, pid: u64, tid: u64, ts_us: u64, id: u64) {
    if !tracing_enabled() {
        return;
    }
    record_event(TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        ph: ph.to_string(),
        ts: ts_us,
        dur: 0,
        pid,
        tid,
        id,
    });
}

/// Drains every collected span (primarily for tests; flushing uses it
/// internally so repeated flushes don't duplicate spans).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *recover(&EVENTS))
}

/// Writes all collected spans to `path` as Chrome trace JSON and
/// clears the collector (including the drop counter, which is emitted
/// in the file's `truncated_events` metadata — each flush accounts
/// for its own truncation). Returns the number of spans written.
pub fn flush_to_path(path: &str) -> std::io::Result<usize> {
    let events = take_events();
    let truncated = DROPPED.swap(0, Ordering::Relaxed);
    let n = events.len();
    let json = serde_json::to_string(&TraceFile {
        traceEvents: events,
        truncated_events: truncated,
    })
    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(n)
}

/// Flushes to the `VI_TRACE` path if that variable is set; reports
/// the destination and span count on stderr so batch runs leave a
/// breadcrumb. Returns the span count written (0 when unset).
pub fn flush_env() -> usize {
    let Some(path) = env_trace_path() else {
        return 0;
    };
    match flush_to_path(path) {
        Ok(n) => {
            eprintln!("vi-telemetry: wrote {n} trace span(s) to {path}");
            n
        }
        Err(e) => {
            eprintln!("vi-telemetry: failed to write trace to {path}: {e}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so exercise it in ONE test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn collector_records_flushes_and_round_trips() {
        enable_tracing();
        assert!(tracing_enabled());
        take_events(); // isolate from any earlier spans

        let t0 = now_us();
        record_span("job", "sweep", PID_SWEEP, 0, t0, 150);
        record_span("shard-geometry", "pool", PID_POOL, 3, t0 + 10, 40);
        record_flow("rx", "protocol", "s", PID_PROTO, 1, 2000, 77);
        record_flow("rx", "protocol", "f", PID_PROTO, 2, 2500, 77);

        let dir = std::env::temp_dir().join("vi_telemetry_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_str = path.to_str().unwrap();
        let written = flush_to_path(path_str).unwrap();
        assert_eq!(written, 4);

        let raw = std::fs::read_to_string(&path).unwrap();
        let back: TraceFile = serde_json::from_str(&raw).unwrap();
        assert_eq!(back.traceEvents.len(), 4);
        assert_eq!(
            back.truncated_events, 0,
            "nothing was dropped, so the metadata says so"
        );
        let job = &back.traceEvents[0];
        assert_eq!(job.name, "job");
        assert_eq!(job.ph, "X");
        assert_eq!(job.pid, PID_SWEEP);
        assert_eq!(job.dur, 150);
        assert_eq!(job.id, 0, "plain spans carry no flow id");
        let shard = &back.traceEvents[1];
        assert_eq!(shard.tid, 3);
        assert_eq!(shard.pid, PID_POOL);
        // Flow endpoints keep their pairing id through the round trip.
        let start = &back.traceEvents[2];
        let finish = &back.traceEvents[3];
        assert_eq!(start.ph, "s");
        assert_eq!(finish.ph, "f");
        assert_eq!(start.id, 77);
        assert_eq!(start.id, finish.id);

        // Flushing drained the collector.
        assert_eq!(take_events().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    fn ev(name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test".to_string(),
            ph: "X".to_string(),
            ts: 0,
            dur: 1,
            pid: PID_SWEEP,
            tid: 0,
            id: 0,
        }
    }

    /// Satellite edge path: the event cap truncates instead of
    /// growing, and the boundary is exact. Exercised against a local
    /// buffer so the process-global collector stays untouched.
    #[test]
    fn event_cap_truncates_at_the_exact_boundary() {
        let mut events = Vec::new();
        for i in 0..5 {
            assert!(push_bounded(&mut events, ev(&format!("e{i}")), 5));
        }
        assert!(!push_bounded(&mut events, ev("overflow"), 5));
        assert_eq!(events.len(), 5);
        assert_eq!(events.last().unwrap().name, "e4", "overflow dropped");
        // The production cap behaves identically at its boundary.
        let mut full = vec![ev("x"); MAX_EVENTS];
        assert!(!push_bounded(&mut full, ev("overflow"), MAX_EVENTS));
        assert_eq!(full.len(), MAX_EVENTS);
        full.pop();
        assert!(push_bounded(&mut full, ev("fits"), MAX_EVENTS));
    }

    /// Satellite edge path: a panic while holding the collector lock
    /// must not poison tracing for the rest of the process — the
    /// recovery branch hands back the pre-panic contents.
    #[test]
    fn poisoned_lock_recovers_with_contents_intact() {
        let events: Mutex<Vec<TraceEvent>> = Mutex::new(vec![ev("before")]);
        let poisoned = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = events.lock().unwrap();
                panic!("poison the collector lock");
            })
            .join()
            .is_err()
        });
        assert!(poisoned, "the helper thread must have panicked");
        assert!(events.lock().is_err(), "lock is poisoned");
        let mut guard = recover(&events);
        assert_eq!(guard.len(), 1);
        assert_eq!(guard[0].name, "before");
        assert!(push_bounded(&mut guard, ev("after"), MAX_EVENTS));
        assert_eq!(guard.len(), 2, "recording continues after recovery");
    }

    #[test]
    fn timestamps_are_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
