//! Delta-debugging minimizer: shrinks a failing spec while the
//! failure still reproduces.
//!
//! Classic ddmin adapted to structured specs: instead of bisecting a
//! flat input, each *pass* proposes structurally smaller variants —
//! drop a population, halve a count, simplify mobility to static,
//! clear churn, drop or narrow nemesis faults, simplify the
//! adversary, truncate rounds, halve writes — and the first variant
//! that (a) validates and (b) reproduces the same [`FailureClass`]
//! under the same seed is accepted. Passes repeat to fixpoint or
//! until the run budget is spent.
//!
//! Minimization never changes the seed: the guarantee is "this
//! *smaller spec*, under the *same seed*, fails the *same way*" —
//! which is what makes the emitted repro spec and its
//! [`vi_scenario::IncidentBundle`] byte-identical replays rather than
//! merely similar bugs.

use crate::campaign::{classify_run, FailureClass};
use vi_audit::NemesisFault;
use vi_radio::AdversaryKind;
use vi_scenario::{MobilitySpec, ScenarioSpec, WorkloadSpec};

/// The result of a minimization: the smallest reproducing spec found
/// and the effort spent getting there.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// The minimized spec (named `<stem>~min`). Reproduces the
    /// original failure class under the original seed.
    pub spec: ScenarioSpec,
    /// Executions spent probing candidates.
    pub runs: u64,
    /// Accepted shrink steps.
    pub accepted: u64,
}

/// Whether `candidate` still fails the same way under `seed`.
fn reproduces(candidate: &ScenarioSpec, seed: u64, class: FailureClass) -> bool {
    candidate.validate().is_ok() && classify_run(candidate, seed) == Some(class)
}

/// One round of candidate proposals, most aggressive first. Every
/// candidate is strictly smaller than `spec` along some axis; the
/// caller filters through validation + reproduction.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ScenarioSpec)| {
        let mut c = spec.clone();
        f(&mut c);
        if c != *spec {
            out.push(c);
        }
    };
    // Drop whole populations (keep at least one).
    if spec.populations.len() > 1 {
        for i in 0..spec.populations.len() {
            push(&|s| {
                s.populations.remove(i);
            });
        }
    }
    // Halve population counts.
    for i in 0..spec.populations.len() {
        if spec.populations[i].count > 1 {
            push(&|s| s.populations[i].count /= 2);
        }
    }
    // Simplify mobility and churn.
    for i in 0..spec.populations.len() {
        if spec.populations[i].mobility != MobilitySpec::Static {
            push(&|s| s.populations[i].mobility = MobilitySpec::Static);
        }
        let p = &spec.populations[i];
        if p.spawn_at != 0 || p.spawn_stride != 0 || p.crash_at.is_some() {
            push(&|s| {
                s.populations[i].spawn_at = 0;
                s.populations[i].spawn_stride = 0;
                s.populations[i].crash_at = None;
            });
        }
    }
    // Drop nemesis faults one at a time, then narrow windows.
    for i in 0..spec.nemesis.faults.len() {
        push(&|s| {
            s.nemesis.faults.remove(i);
        });
        push(&|s| match &mut s.nemesis.faults[i] {
            NemesisFault::Jam { window } | NemesisFault::DetectorChaos { window, .. } => {
                let len = window.end - window.start;
                if len > 1 {
                    window.end = window.start + len / 2;
                }
            }
            NemesisFault::CrashBurst { victims, .. } => {
                *victims = (*victims / 2).max(1);
            }
        });
    }
    // Simplify the adversary timeline.
    if spec.adversary != AdversaryKind::None {
        push(&|s| s.adversary = AdversaryKind::None);
        if let AdversaryKind::Compose(members) = &spec.adversary {
            for m in members {
                push(&|s| s.adversary = m.clone());
            }
        }
    }
    // Truncate the run and thin the workload.
    match &spec.workload {
        WorkloadSpec::ChaClique { instances } if *instances > 1 => {
            push(&|s| {
                if let WorkloadSpec::ChaClique { instances } = &mut s.workload {
                    *instances /= 2;
                }
            });
        }
        WorkloadSpec::ViCounter { virtual_rounds, .. } if *virtual_rounds > 1 => {
            push(&|s| {
                if let WorkloadSpec::ViCounter { virtual_rounds, .. } = &mut s.workload {
                    *virtual_rounds /= 2;
                }
            });
        }
        WorkloadSpec::Traffic { traffic, .. } => {
            if traffic.virtual_rounds > 2 {
                push(&|s| {
                    if let WorkloadSpec::Traffic { traffic, .. } = &mut s.workload {
                        traffic.virtual_rounds /= 2;
                    }
                });
            }
            if traffic.clients > 1 {
                push(&|s| {
                    if let WorkloadSpec::Traffic { traffic, .. } = &mut s.workload {
                        traffic.clients /= 2;
                    }
                });
            }
        }
        WorkloadSpec::MajorityRegister {
            writes,
            rounds,
            partition_from,
        } => {
            if *writes > 1 {
                push(&|s| {
                    if let WorkloadSpec::MajorityRegister { writes, .. } = &mut s.workload {
                        *writes /= 2;
                    }
                });
            }
            // Truncate rounds, keeping any partition inside the run.
            let floor = partition_from.map_or(1, |p| p + 1);
            if *rounds / 2 >= floor {
                push(&|s| {
                    if let WorkloadSpec::MajorityRegister { rounds, .. } = &mut s.workload {
                        *rounds /= 2;
                    }
                });
            }
        }
        _ => {}
    }
    out
}

/// Shrinks `spec` to a (locally) minimal spec that still fails as
/// `class` under `seed`, spending at most `budget` candidate runs.
/// The input is assumed to reproduce; the output is renamed
/// `<stem>~min`.
pub fn minimize(
    spec: &ScenarioSpec,
    seed: u64,
    class: FailureClass,
    budget: u64,
) -> MinimizeOutcome {
    let mut current = spec.clone();
    let mut runs = 0u64;
    let mut accepted = 0u64;
    let mut progress = true;
    while progress && runs < budget {
        progress = false;
        for candidate in candidates(&current) {
            if runs >= budget {
                break;
            }
            if candidate.validate().is_err() {
                continue; // shrink collided with a validity rule: skip, don't spend a run
            }
            runs += 1;
            if reproduces(&candidate, seed, class) {
                current = candidate;
                accepted += 1;
                progress = true;
                break; // restart the pass ladder from the smaller spec
            }
        }
    }
    let stem = current.name.split('~').next().unwrap_or("fuzz").to_string();
    current.name = format!("{stem}~min");
    MinimizeOutcome {
        spec: current,
        runs,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_scenario::catalog;

    /// The planted violation minimizes: fewer writes and/or rounds,
    /// same deterministic audit failure, byte-identical replays.
    #[test]
    fn broken_majority_minimizes_and_still_violates() {
        let spec = catalog::scenario("broken_majority").expect("catalog");
        let seed = 1;
        assert_eq!(
            classify_run(&spec, seed),
            Some(FailureClass::AuditViolation)
        );
        let min = minimize(&spec, seed, FailureClass::AuditViolation, 64);
        assert!(min.accepted > 0, "something must shrink");
        assert!(min.spec.name.ends_with("~min"));
        assert_eq!(
            classify_run(&min.spec, seed),
            Some(FailureClass::AuditViolation),
            "the minimized spec still fails the same way"
        );
        // Strictly no bigger along the axes the passes touch.
        let (w0, r0) = match spec.workload {
            WorkloadSpec::MajorityRegister { writes, rounds, .. } => (writes, rounds),
            _ => unreachable!(),
        };
        let (w1, r1) = match min.spec.workload {
            WorkloadSpec::MajorityRegister { writes, rounds, .. } => (writes, rounds),
            _ => panic!("family preserved"),
        };
        assert!(w1 <= w0 && r1 <= r0 && (w1 < w0 || r1 < r0));
    }
}
