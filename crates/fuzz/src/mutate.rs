//! Typed spec mutators: each perturbs exactly one dimension of a
//! [`ScenarioSpec`], with every choice drawn from the seeded campaign
//! RNG through [`vi_audit::pick`] — the same "choose a target"
//! primitive the audit history mutators use, so a mutation schedule
//! is reproducible from the seed alone.
//!
//! Mutators are *allowed* to produce invalid specs (empty
//! deployments, dead windows, inverted ranges): the campaign
//! validates every candidate and counts rejections. What they must
//! never do is produce a spec that validates and then panics the
//! compiler — that contract is [`ScenarioSpec::validate`]'s, and the
//! fuzzer is its regression test.

use rand::rngs::StdRng;
use vi_audit::{pick, NemesisFault, NemesisSpec};
use vi_radio::geometry::Point;
use vi_radio::AdversaryKind;
use vi_scenario::{MobilitySpec, PlacementSpec, PopulationSpec, ScenarioSpec, WorkloadSpec};

/// One dimension of the spec space a mutation can move along.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutator {
    /// Grow/shrink a population or change its placement.
    Population,
    /// Swap or retune a population's mobility model.
    Mobility,
    /// Open, move, or close spawn/crash churn windows.
    Churn,
    /// Rewrite the channel-adversary timeline.
    Adversary,
    /// Add, drop, or shift nemesis faults.
    Nemesis,
    /// Retune the traffic mix (rate, clients, timeout, mix).
    TrafficMix,
    /// Turn the workload's own knobs (instances, rounds, writes,
    /// partitions).
    Workload,
}

/// Every mutator, in the order the campaign cycles them.
pub const MUTATORS: [Mutator; 7] = [
    Mutator::Population,
    Mutator::Mobility,
    Mutator::Churn,
    Mutator::Adversary,
    Mutator::Nemesis,
    Mutator::TrafficMix,
    Mutator::Workload,
];

/// The run length mutations scale their windows to.
fn horizon(spec: &ScenarioSpec) -> u64 {
    spec.planned_rounds().unwrap_or(60).max(4)
}

/// Renames a mutated child: the ancestral stem plus a short lineage
/// tag, so corpus entries stay readable after many generations.
fn child_name(spec: &ScenarioSpec, tag: &str) -> String {
    let stem = spec.name.split('~').next().unwrap_or(&spec.name);
    format!("{stem}~{tag}")
}

/// Applies `mutator` to a copy of `spec`, drawing every choice from
/// `rng`. The result may be invalid — the campaign validates.
// Single-element window vectors are the *intended* mutation shape
// here (one fresh jam/chaos window), not a misspelled range collect.
#[allow(clippy::single_range_in_vec_init)]
pub fn apply(spec: &ScenarioSpec, mutator: Mutator, rng: &mut StdRng) -> ScenarioSpec {
    let mut out = spec.clone();
    let h = horizon(spec);
    match mutator {
        Mutator::Population => {
            out.name = child_name(spec, "p");
            match rng.random_range(0..3u32) {
                0 => {
                    // Grow or shrink one population (shrinking to zero
                    // is allowed: validation owns the rejection).
                    if let Some(i) = pick(rng, out.populations.len()) {
                        let p = &mut out.populations[i];
                        if rng.random_bool(0.5) {
                            p.count += rng.random_range(1..=2usize);
                        } else {
                            p.count = p.count.saturating_sub(rng.random_range(1..=2usize));
                        }
                    }
                }
                1 => {
                    // Re-place one population.
                    if let Some(i) = pick(rng, out.populations.len()) {
                        out.populations[i].placement = if rng.random_bool(0.5) {
                            PlacementSpec::Cluster {
                                center: Point::new(
                                    rng.random_range(1.0..8.0),
                                    rng.random_range(1.0..8.0),
                                ),
                                radius: rng.random_range(0.5..3.0),
                            }
                        } else {
                            PlacementSpec::Uniform
                        };
                    }
                }
                _ => {
                    // Add a fresh late-arriving wave.
                    out.populations.push(PopulationSpec::fixed(
                        rng.random_range(1..=2usize),
                        PlacementSpec::Cluster {
                            center: Point::new(2.0, 2.0),
                            radius: 1.5,
                        },
                    ));
                }
            }
        }
        Mutator::Mobility => {
            out.name = child_name(spec, "m");
            if let Some(i) = pick(rng, out.populations.len()) {
                out.populations[i].mobility = match rng.random_range(0..4u32) {
                    0 => MobilitySpec::Static,
                    1 => MobilitySpec::Waypoint {
                        speed: rng.random_range(0.05..1.0),
                    },
                    2 => MobilitySpec::Billiard {
                        vel_x: rng.random_range(-0.5..0.5),
                        vel_y: rng.random_range(-0.5..0.5),
                    },
                    _ => MobilitySpec::DepartAt {
                        dir_x: 1.0,
                        dir_y: 0.0,
                        speed: rng.random_range(0.1..0.8),
                        depart_at: rng.random_range(0..h),
                    },
                };
            }
        }
        Mutator::Churn => {
            out.name = child_name(spec, "c");
            if let Some(i) = pick(rng, out.populations.len()) {
                let p = &mut out.populations[i];
                match rng.random_range(0..3u32) {
                    0 => {
                        p.spawn_at = rng.random_range(0..h.saturating_mul(2));
                        p.spawn_stride = rng.random_range(0..4);
                    }
                    1 => p.crash_at = Some(rng.random_range(1..h.saturating_mul(2))),
                    _ => {
                        p.spawn_at = 0;
                        p.spawn_stride = 0;
                        p.crash_at = None;
                    }
                }
            }
        }
        Mutator::Adversary => {
            out.name = child_name(spec, "a");
            out.adversary = match rng.random_range(0..5u32) {
                0 => AdversaryKind::None,
                1 => AdversaryKind::Random(rng.random_range(0.0..0.6), rng.random_range(0.0..0.2)),
                2 => {
                    let start = rng.random_range(0..h);
                    let len = rng.random_range(1..=h.max(2) / 2);
                    AdversaryKind::Burst(vec![start..start + len])
                }
                3 => {
                    let start = rng.random_range(0..h);
                    let len = rng.random_range(1..=h.max(2) / 2);
                    AdversaryKind::WindowedRandom {
                        windows: vec![start..start + len],
                        drop_p: rng.random_range(0.1..0.9),
                        spurious_p: rng.random_range(0.0..0.3),
                    }
                }
                _ => AdversaryKind::Compose(vec![
                    spec.adversary.clone(),
                    AdversaryKind::Random(rng.random_range(0.0..0.3), 0.0),
                ]),
            };
        }
        Mutator::Nemesis => {
            out.name = child_name(spec, "n");
            let mut faults = out.nemesis.faults.clone();
            let drop_one = !faults.is_empty() && rng.random_bool(0.4);
            if drop_one {
                if let Some(i) = pick(rng, faults.len()) {
                    faults.remove(i);
                }
            } else {
                let start = rng.random_range(0..h);
                let len = rng.random_range(1..=h.max(2) / 2);
                faults.push(match rng.random_range(0..3u32) {
                    0 => NemesisFault::Jam {
                        window: start..start + len,
                    },
                    1 => NemesisFault::DetectorChaos {
                        window: start..start + len,
                        spurious_p: rng.random_range(0.05..0.5),
                    },
                    _ => NemesisFault::CrashBurst {
                        at_round: start,
                        victims: rng.random_range(1..=2usize),
                    },
                });
            }
            out.nemesis = NemesisSpec { faults };
        }
        Mutator::TrafficMix => {
            out.name = child_name(spec, "t");
            if let WorkloadSpec::Traffic { traffic, .. } = &mut out.workload {
                match rng.random_range(0..4u32) {
                    0 => {
                        if let vi_scenario::LoadMode::Open { rate_per_round, .. } =
                            &mut traffic.mode
                        {
                            *rate_per_round = rng.random_range(0.1..3.0);
                        } else {
                            traffic.mode = vi_scenario::LoadMode::Open {
                                rate_per_round: rng.random_range(0.1..2.0),
                                phases: Vec::new(),
                            };
                        }
                    }
                    1 => {
                        traffic.clients = rng.random_range(1..=4usize);
                    }
                    2 => traffic.timeout_rounds = rng.random_range(2..40),
                    _ => traffic.query_fraction = rng.random_range(0.0..1.0),
                }
            } else {
                // Not a traffic workload: nudge the run length so the
                // mutation is never a silent no-op.
                scale_rounds(&mut out.workload, rng);
            }
        }
        Mutator::Workload => {
            out.name = child_name(spec, "w");
            match &mut out.workload {
                WorkloadSpec::ChaClique { instances } => {
                    *instances = rng.random_range(1..=8u64);
                }
                WorkloadSpec::ViCounter { virtual_rounds, .. } => {
                    *virtual_rounds = rng.random_range(1..=10u64);
                }
                WorkloadSpec::Traffic { traffic, audit, .. } => {
                    traffic.virtual_rounds = rng.random_range(4..=16u64);
                    *audit = true;
                }
                WorkloadSpec::MajorityRegister {
                    writes,
                    rounds,
                    partition_from,
                } => match rng.random_range(0..3u32) {
                    0 => *writes = rng.random_range(1..=10u64),
                    1 => *rounds = rng.random_range(8..=32u64),
                    _ => {
                        // The money mutation: open (or heal) a
                        // partition inside the run.
                        *partition_from = if partition_from.is_some() && rng.random_bool(0.3) {
                            None
                        } else {
                            Some(rng.random_range(1..(*rounds).max(2)))
                        };
                    }
                },
            }
        }
    }
    out
}

/// Scales whatever round knob the workload has, used when a mutator's
/// primary dimension does not exist on this workload family.
fn scale_rounds(workload: &mut WorkloadSpec, rng: &mut StdRng) {
    match workload {
        WorkloadSpec::ChaClique { instances } => *instances = rng.random_range(1..=8u64),
        WorkloadSpec::ViCounter { virtual_rounds, .. } => {
            *virtual_rounds = rng.random_range(1..=10u64);
        }
        WorkloadSpec::Traffic { traffic, .. } => {
            traffic.virtual_rounds = rng.random_range(4..=16u64);
        }
        WorkloadSpec::MajorityRegister { rounds, .. } => *rounds = rng.random_range(8..=32u64),
    }
}

/// Recombination: grafts one dimension of `b` onto `a` — the corpus
/// analogue of crossover. The grafted dimension is chosen from the
/// RNG; workloads are never crossed (they define the family).
pub fn crossover(a: &ScenarioSpec, b: &ScenarioSpec, rng: &mut StdRng) -> ScenarioSpec {
    let mut out = a.clone();
    out.name = child_name(a, "x");
    match rng.random_range(0..3u32) {
        0 => out.adversary = b.adversary.clone(),
        1 => out.nemesis = b.nemesis.clone(),
        _ => {
            if let (Some(i), Some(j)) = (
                pick(rng, out.populations.len()),
                pick(rng, b.populations.len()),
            ) {
                out.populations[i].mobility = b.populations[j].mobility.clone();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::seed_corpus;
    use rand::SeedableRng;

    #[test]
    fn mutation_schedules_are_deterministic() {
        let corpus = seed_corpus();
        for spec in &corpus {
            for &m in &MUTATORS {
                let a = apply(spec, m, &mut StdRng::seed_from_u64(7));
                let b = apply(spec, m, &mut StdRng::seed_from_u64(7));
                assert_eq!(a, b, "{:?} must be a pure function of (spec, seed)", m);
            }
        }
    }

    #[test]
    fn mutants_are_runnable_or_rejected_never_panicking() {
        // The satellite-1 contract, exercised the way the campaign
        // does: every validating mutant must compile and run.
        let corpus = seed_corpus();
        let mut rng = StdRng::seed_from_u64(42);
        let mut ran = 0u32;
        let mut rejected = 0u32;
        for round in 0..6u64 {
            for spec in &corpus {
                for &m in &MUTATORS {
                    let child = apply(spec, m, &mut rng);
                    match child.validate() {
                        Ok(()) => {
                            child.run(round);
                            ran += 1;
                        }
                        Err(_) => rejected += 1,
                    }
                }
            }
        }
        assert!(ran > 0, "some mutants must run");
        // Rejection is allowed but must not dominate: the mutators
        // would otherwise never explore.
        assert!(ran >= rejected, "{ran} ran vs {rejected} rejected");
    }

    #[test]
    fn crossover_grafts_one_dimension() {
        let corpus = seed_corpus();
        let mut rng = StdRng::seed_from_u64(3);
        let child = crossover(&corpus[0], &corpus[1], &mut rng);
        assert_eq!(child.workload, corpus[0].workload, "workload never crossed");
        assert!(child.name.starts_with("fuzz_cha~x"));
    }
}
