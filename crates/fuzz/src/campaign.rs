//! The fuzz orchestrator: generation, execution, coverage feedback,
//! and finding management, on top of [`SweepRunner`]'s scoped worker
//! pool.
//!
//! Determinism contract: identical [`FuzzConfig`]s produce identical
//! campaigns — same corpus, same findings, same minimized specs — at
//! *any* `workers` setting. Everything that feeds a decision is
//! deterministic (outcomes are worker-invariant, corpus iteration is
//! signature-ordered, the RNG is seeded), and the candidate batch
//! size is a constant rather than a function of the worker count, so
//! the mutation schedule never observes the parallelism.

use crate::corpus::{Corpus, CorpusEntry};
use crate::coverage::Signature;
use crate::gen::seed_corpus;
use crate::minimize::minimize;
use crate::mutate::{apply, crossover, MUTATORS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use vi_audit::pick;
use vi_scenario::{EngineTuning, IncidentBundle, ScenarioOutcome, ScenarioSpec, SweepRunner};

/// Salt folded into the campaign seed so the mutation stream shares
/// nothing with the simulation seeds it hands out.
const CAMPAIGN_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Candidates per [`SweepRunner`] batch. A constant (not a function
/// of the worker count) so the mutation schedule is identical at any
/// parallelism.
const BATCH: usize = 8;

/// Flight-recorder window used when packaging a finding's bundle.
const FLIGHT_ROUNDS: usize = 8;

/// How a run failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// The CHA specification checker found a safety violation
    /// (validity, agreement, or color spread).
    Safety,
    /// A consistency-audit checker reported a violation.
    AuditViolation,
    /// Traffic was issued but nothing ever completed.
    Stall,
    /// The run panicked.
    Panic,
}

impl FailureClass {
    /// Short label for reports and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Safety => "safety",
            FailureClass::AuditViolation => "audit",
            FailureClass::Stall => "stall",
            FailureClass::Panic => "panic",
        }
    }
}

/// Classifies a completed outcome; `None` = healthy.
pub fn classify(outcome: &ScenarioOutcome) -> Option<FailureClass> {
    if outcome.safety_violations() > 0 {
        return Some(FailureClass::Safety);
    }
    if outcome.audit.as_ref().is_some_and(|r| !r.ok()) {
        return Some(FailureClass::AuditViolation);
    }
    if outcome
        .traffic
        .as_ref()
        .is_some_and(|t| t.issued > 0 && t.completed == 0)
    {
        return Some(FailureClass::Stall);
    }
    None
}

/// Runs `spec` under `seed` (panic-safely) and classifies the result.
/// The minimizer's reproduction oracle.
pub fn classify_run(spec: &ScenarioSpec, seed: u64) -> Option<FailureClass> {
    match catch_unwind(AssertUnwindSafe(|| spec.run(seed))) {
        Ok(outcome) => classify(&outcome),
        Err(_) => Some(FailureClass::Panic),
    }
}

/// One confirmed, minimized failure.
#[derive(Clone, Debug)]
pub struct Finding {
    /// How the run failed.
    pub class: FailureClass,
    /// Coverage signature of the *original* failing run.
    pub signature: Signature,
    /// The minimized repro spec (named `<stem>~min`).
    pub spec: ScenarioSpec,
    /// Name of the spec as discovered, before minimization.
    pub discovered_as: String,
    /// The seed the failure reproduces under.
    pub seed: u64,
    /// Campaign iteration that discovered it.
    pub iteration: u64,
    /// Candidate executions the minimizer spent.
    pub minimize_runs: u64,
    /// Replayable incident bundle (absent only for panics, which
    /// refuse to produce an outcome to package).
    pub bundle: Option<IncidentBundle>,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Mutation candidates to generate (rejected ones count).
    pub iters: u64,
    /// Campaign seed: drives mutations, parent choice, and run seeds.
    pub seed: u64,
    /// Sweep workers executing candidate batches.
    pub workers: usize,
    /// Persistent corpus directory: loaded before the campaign,
    /// saved (with new buckets) after.
    pub corpus_dir: Option<PathBuf>,
    /// Run budget per minimization.
    pub minimize_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 400,
            seed: 0xf00d,
            workers: 1,
            corpus_dir: None,
            minimize_budget: 96,
        }
    }
}

/// What a campaign did: corpus growth, throughput accounting, and
/// every (deduplicated) finding.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Candidates generated (= the configured budget).
    pub iters: u64,
    /// Candidates that validated and ran.
    pub executed: u64,
    /// Candidates rejected by spec validation (typed errors, no runs).
    pub rejected: u64,
    /// Runs that reached a previously unowned coverage bucket.
    pub new_buckets: u64,
    /// The final coverage map.
    pub corpus: Corpus,
    /// Minimized findings, in discovery order (one per
    /// `(failure class, workload family)`).
    pub findings: Vec<Finding>,
}

/// Packages a finding's replayable bundle: rerun the minimized spec
/// with a flight recorder; the engine assembles the bundle itself on
/// violation or stall.
fn package_bundle(spec: &ScenarioSpec, seed: u64) -> Option<IncidentBundle> {
    let tuning = EngineTuning::DEFAULT.with_flight(FLIGHT_ROUNDS);
    catch_unwind(AssertUnwindSafe(|| spec.run_with(seed, tuning)))
        .ok()
        .and_then(|outcome| outcome.incident)
}

/// Runs a coverage-guided fuzzing campaign. See the module docs for
/// the loop shape and the determinism contract.
///
/// # Errors
///
/// Returns an error only for corpus-directory I/O problems; fuzzing
/// failures are *findings*, not errors.
pub fn run_campaign(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ CAMPAIGN_SALT);
    let runner = SweepRunner::new(config.workers.max(1));
    let tuning = EngineTuning::DEFAULT.with_telemetry();
    let mut corpus = match &config.corpus_dir {
        Some(dir) => Corpus::load(dir)?,
        None => Corpus::new(),
    };
    let mut report = FuzzReport {
        iters: config.iters,
        executed: 0,
        rejected: 0,
        new_buckets: 0,
        corpus: Corpus::new(),
        findings: Vec::new(),
    };
    // One finding per (class, family): the first discovery pins the
    // bug; later hits of the same class on the same family are the
    // same bug reached again, not new information.
    let mut seen: BTreeSet<(FailureClass, String)> = BTreeSet::new();
    // Ancestors seed the coverage map (iteration 0).
    let ancestors: Vec<(ScenarioSpec, u64)> = seed_corpus()
        .into_iter()
        .map(|s| {
            let seed = rng.random_range(1..=u32::MAX as u64);
            (s, seed)
        })
        .collect();
    let outcomes = runner.run_with(&ancestors, tuning);
    for ((spec, seed), outcome) in ancestors.iter().zip(&outcomes) {
        report.executed += 1;
        let entry = CorpusEntry {
            signature: Signature::of(outcome),
            spec: spec.clone(),
            seed: *seed,
            iteration: 0,
        };
        if corpus.insert_if_new(entry) {
            report.new_buckets += 1;
        }
    }

    let mut iteration = 0u64;
    while iteration < config.iters {
        // Compose one batch of candidates. All decisions happen here,
        // before anything runs, off deterministic state only.
        let mut jobs: Vec<(ScenarioSpec, u64)> = Vec::new();
        let mut metas: Vec<u64> = Vec::new();
        while jobs.len() < BATCH && iteration < config.iters {
            iteration += 1;
            let parent = corpus
                .nth(rng.random_range(0..corpus.len().max(1)))
                .expect("corpus holds at least the ancestors")
                .spec
                .clone();
            let child = if corpus.len() >= 2 && rng.random_bool(0.2) {
                let other = corpus
                    .nth(rng.random_range(0..corpus.len()))
                    .expect("non-empty")
                    .spec
                    .clone();
                crossover(&parent, &other, &mut rng)
            } else {
                let m = MUTATORS[pick(&mut rng, MUTATORS.len()).expect("mutators exist")];
                apply(&parent, m, &mut rng)
            };
            let run_seed = rng.random_range(1..=u32::MAX as u64);
            match child.validate() {
                Ok(()) => {
                    jobs.push((child, run_seed));
                    metas.push(iteration);
                }
                Err(_) => report.rejected += 1,
            }
        }
        if jobs.is_empty() {
            continue;
        }
        // Run the batch on the pool; on a batch panic, re-attribute
        // by running each job alone so the panicking spec is caught
        // (and becomes a finding) instead of killing the campaign.
        let outcomes = catch_unwind(AssertUnwindSafe(|| runner.run_with(&jobs, tuning)));
        match outcomes {
            Ok(outs) => {
                for (((spec, seed), outcome), &iter_no) in jobs.iter().zip(&outs).zip(&metas) {
                    report.executed += 1;
                    process(
                        spec,
                        *seed,
                        outcome,
                        iter_no,
                        config,
                        &mut corpus,
                        &mut seen,
                        &mut report,
                    );
                }
            }
            Err(_) => {
                for ((spec, seed), &iter_no) in jobs.iter().zip(&metas) {
                    match catch_unwind(AssertUnwindSafe(|| spec.run_with(*seed, tuning))) {
                        Ok(outcome) => {
                            report.executed += 1;
                            process(
                                spec,
                                *seed,
                                &outcome,
                                iter_no,
                                config,
                                &mut corpus,
                                &mut seen,
                                &mut report,
                            );
                        }
                        Err(_) => {
                            report.executed += 1;
                            record_finding(
                                spec,
                                *seed,
                                FailureClass::Panic,
                                Signature::of(&placeholder_outcome(spec, *seed)),
                                iter_no,
                                config,
                                &mut seen,
                                &mut report,
                            );
                        }
                    }
                }
            }
        }
    }
    report.corpus = corpus;
    if let Some(dir) = &config.corpus_dir {
        report.corpus.save(dir).map_err(|e| e.to_string())?;
        save_findings(&report, dir)?;
    }
    Ok(report)
}

/// Persists every finding under `<dir>/findings/`: the minimized
/// repro spec as `<family>-<class>.json` (feed it back through
/// `repro fuzz --minimize` or lift it into the catalog) and, when one
/// was packaged, its replayable bundle as
/// `<family>-<class>.bundle.json` (feed it to `repro --replay`).
fn save_findings(report: &FuzzReport, dir: &std::path::Path) -> Result<(), String> {
    if report.findings.is_empty() {
        return Ok(());
    }
    let findings_dir = dir.join("findings");
    std::fs::create_dir_all(&findings_dir).map_err(|e| e.to_string())?;
    for f in &report.findings {
        let family = f.spec.name.split('~').next().unwrap_or("fuzz");
        let stem = format!("{family}-{}", f.class.label());
        let json = serde_json::to_string(&f.spec).map_err(|e| e.to_string())?;
        std::fs::write(findings_dir.join(format!("{stem}.json")), json)
            .map_err(|e| e.to_string())?;
        if let Some(bundle) = &f.bundle {
            bundle
                .save(&findings_dir.join(format!("{stem}.bundle.json")))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Coverage + failure handling for one completed run.
#[allow(clippy::too_many_arguments)]
fn process(
    spec: &ScenarioSpec,
    seed: u64,
    outcome: &ScenarioOutcome,
    iteration: u64,
    config: &FuzzConfig,
    corpus: &mut Corpus,
    seen: &mut BTreeSet<(FailureClass, String)>,
    report: &mut FuzzReport,
) {
    let signature = Signature::of(outcome);
    let entry = CorpusEntry {
        signature: signature.clone(),
        spec: spec.clone(),
        seed,
        iteration,
    };
    if corpus.insert_if_new(entry) {
        report.new_buckets += 1;
    }
    if let Some(class) = classify(outcome) {
        record_finding(
            spec, seed, class, signature, iteration, config, seen, report,
        );
    }
}

/// Minimizes and records one failure, if its (class, family) is new.
#[allow(clippy::too_many_arguments)]
fn record_finding(
    spec: &ScenarioSpec,
    seed: u64,
    class: FailureClass,
    signature: Signature,
    iteration: u64,
    config: &FuzzConfig,
    seen: &mut BTreeSet<(FailureClass, String)>,
    report: &mut FuzzReport,
) {
    let family = spec
        .name
        .split('~')
        .next()
        .unwrap_or(&spec.name)
        .to_string();
    if !seen.insert((class, family)) {
        return;
    }
    let min = minimize(spec, seed, class, config.minimize_budget);
    let bundle = match class {
        FailureClass::Panic => None,
        _ => package_bundle(&min.spec, seed),
    };
    report.findings.push(Finding {
        class,
        signature,
        spec: min.spec,
        discovered_as: spec.name.clone(),
        seed,
        iteration,
        minimize_runs: min.runs,
        bundle,
    });
}

/// A stand-in outcome for a panicking run, so panic findings still
/// carry a (degenerate) signature: everything zero except the family.
fn placeholder_outcome(spec: &ScenarioSpec, seed: u64) -> ScenarioOutcome {
    ScenarioOutcome {
        scenario: spec.name.clone(),
        seed,
        nodes: spec.node_count(),
        rounds: 0,
        broadcasts: 0,
        deliveries: 0,
        collision_reports: 0,
        max_message_bytes: 0,
        outputs_checked: 0,
        validity_violations: 0,
        agreement_violations: 0,
        spread_violations: 0,
        decided_fraction: 0.0,
        stabilized_kst: None,
        vn_joins: 0,
        vn_resets: 0,
        traffic: None,
        audit: None,
        telemetry: None,
        causal: None,
        incident: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(iters: u64, seed: u64, workers: usize) -> FuzzReport {
        run_campaign(&FuzzConfig {
            iters,
            seed,
            workers,
            corpus_dir: None,
            minimize_budget: 48,
        })
        .expect("no corpus dir, no I/O errors")
    }

    #[test]
    fn campaigns_are_deterministic_and_worker_invariant() {
        let a = small(48, 7, 1);
        let b = small(48, 7, 4);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.new_buckets, b.new_buckets);
        assert_eq!(a.corpus, b.corpus, "coverage maps are worker-invariant");
        assert_eq!(a.findings.len(), b.findings.len());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.class, fb.class);
            assert_eq!(fa.spec, fb.spec, "minimized specs are worker-invariant");
            assert_eq!(fa.seed, fb.seed);
        }
    }

    #[test]
    fn coverage_accounting_closes() {
        let r = small(48, 9, 2);
        assert_eq!(r.iters, 48);
        // 4 ancestors ran on top of the iteration budget.
        assert_eq!(r.executed + r.rejected, 48 + 4);
        assert!(
            r.new_buckets as usize >= 4,
            "ancestors own distinct buckets"
        );
        assert_eq!(r.corpus.len() as u64, r.new_buckets);
    }
}
