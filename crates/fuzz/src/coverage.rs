//! Coverage signatures: the feedback half of the fuzz loop.
//!
//! A [`Signature`] buckets one run's *observable behaviour* — not its
//! spec — so two different specs that drive the stack through the
//! same regime collide, and a mutation only earns corpus space by
//! reaching behaviour nobody reached before. The ingredients are the
//! ones the observability PRs made deterministic:
//!
//! * the resolver-mode counter profile from vi-telemetry (which round
//!   paths fired, log2-bucketed);
//! * channel bands (broadcasts / deliveries / collision reports,
//!   log2-bucketed);
//! * checker verdicts (safety, audit, liveness stall);
//! * liveness `kst` (stabilization instance, log2-bucketed) and the
//!   decided fraction (decile-bucketed);
//! * traffic bands (completions / timeouts / p99, log2-bucketed).
//!
//! Log2 bucketing is the point: exact counters would make every run
//! "new coverage" and the corpus would never converge, while verdict
//! bits alone would collapse the space to a handful of buckets.

use serde::{Deserialize, Serialize};
use vi_scenario::ScenarioOutcome;

/// Floor-log2 bucket of a counter, with 0 kept distinct from 1.
fn bucket(v: u64) -> u8 {
    match v {
        0 => 0,
        v => (64 - v.leading_zeros()) as u8,
    }
}

/// The coverage key of one run. `Ord` so the corpus can live in a
/// `BTreeMap` (deterministic iteration order — the campaign's parent
/// selection must not depend on hash order).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Signature {
    /// Workload family tag (the behaviour spaces are disjoint).
    pub family: String,
    /// The run found a CHA safety violation.
    pub safety: bool,
    /// Audit verdict: `None` = not audited, `Some(true)` = clean.
    pub audit_ok: Option<bool>,
    /// Traffic was issued but nothing ever completed.
    pub stall: bool,
    /// Resolver-mode round profile, log2-bucketed: steady, scatter,
    /// re-anchor, churn, legacy.
    pub resolver: [u8; 5],
    /// Channel bands, log2-bucketed: broadcasts, deliveries,
    /// collision reports.
    pub channel: [u8; 3],
    /// Liveness: log2 bucket of the stabilization instance `kst`
    /// (`255` = never stabilized / not a CHA run).
    pub kst: u8,
    /// Decided fraction, in deciles.
    pub decided: u8,
    /// Traffic bands, log2-bucketed: completed, timed out, p99
    /// (zeros when the run drove no traffic).
    pub traffic: [u8; 3],
}

impl Signature {
    /// Buckets `outcome` into its signature. Telemetry-blind runs
    /// (no counters) get an all-zero resolver profile, which is its
    /// own bucket — the campaign always runs with telemetry on.
    pub fn of(outcome: &ScenarioOutcome) -> Signature {
        let resolver = outcome
            .telemetry
            .as_ref()
            .map(|t| {
                [
                    bucket(t.counters.rounds_steady),
                    bucket(t.counters.rounds_scatter),
                    bucket(t.counters.rounds_reanchor),
                    bucket(t.counters.rounds_churn),
                    bucket(t.counters.rounds_legacy),
                ]
            })
            .unwrap_or_default();
        let traffic = outcome
            .traffic
            .as_ref()
            .map(|t| [bucket(t.completed), bucket(t.timed_out), bucket(t.p99)])
            .unwrap_or_default();
        let stall = outcome
            .traffic
            .as_ref()
            .is_some_and(|t| t.issued > 0 && t.completed == 0);
        Signature {
            family: outcome
                .scenario
                .split('~')
                .next()
                .unwrap_or(&outcome.scenario)
                .to_string(),
            safety: outcome.safety_violations() > 0,
            audit_ok: outcome.audit.as_ref().map(|r| r.ok()),
            stall,
            resolver,
            channel: [
                bucket(outcome.broadcasts),
                bucket(outcome.deliveries),
                bucket(outcome.collision_reports),
            ],
            kst: outcome.stabilized_kst.map_or(255, bucket),
            decided: (outcome.decided_fraction.clamp(0.0, 1.0) * 10.0) as u8,
            traffic,
        }
    }

    /// A compact, filesystem-safe rendering, used for corpus entry
    /// file names and bench rows.
    pub fn key(&self) -> String {
        let b = |v: bool| u8::from(v);
        format!(
            "{}-s{}a{}l{}-r{}.{}.{}.{}.{}-c{}.{}.{}-k{}-d{}-t{}.{}.{}",
            self.family,
            b(self.safety),
            self.audit_ok.map_or(2, b),
            b(self.stall),
            self.resolver[0],
            self.resolver[1],
            self.resolver[2],
            self.resolver[3],
            self.resolver[4],
            self.channel[0],
            self.channel[1],
            self.channel[2],
            self.kst,
            self.decided,
            self.traffic[0],
            self.traffic[1],
            self.traffic[2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::seed_corpus;
    use vi_scenario::EngineTuning;

    #[test]
    fn buckets_are_log2_with_zero_distinct() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1024), 11);
    }

    #[test]
    fn signatures_are_deterministic_and_family_distinct() {
        let corpus = seed_corpus();
        let tuning = EngineTuning::DEFAULT.with_telemetry();
        let sigs: Vec<Signature> = corpus
            .iter()
            .map(|s| Signature::of(&s.run_with(5, tuning)))
            .collect();
        for (spec, sig) in corpus.iter().zip(&sigs) {
            assert_eq!(sig.family, spec.name);
            assert_eq!(
                *sig,
                Signature::of(&spec.run_with(5, tuning)),
                "signatures are a pure function of (spec, seed)"
            );
            let json = serde_json::to_string(sig).unwrap();
            let back: Signature = serde_json::from_str(&json).unwrap();
            assert_eq!(back, *sig, "signatures round-trip");
            assert!(!sig.key().contains(' '), "keys are filesystem-safe");
        }
        // Distinct families never collide (the family tag partitions
        // the space).
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j]);
            }
        }
    }
}
