//! The corpus: every behaviour bucket ever reached, with the spec
//! that reached it first. Parents for the next generation are drawn
//! from here, so the map type matters: a `BTreeMap` keyed by
//! [`Signature`] gives deterministic iteration order, which keeps
//! parent selection — and therefore the whole campaign — a pure
//! function of the seed.

use crate::coverage::Signature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use vi_scenario::ScenarioSpec;

/// One retained spec: the first reacher of its coverage bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The coverage bucket this entry owns.
    pub signature: Signature,
    /// The retained spec.
    pub spec: ScenarioSpec,
    /// The seed it ran under.
    pub seed: u64,
    /// Campaign iteration that reached the bucket (0 = ancestor).
    pub iteration: u64,
}

/// The coverage map. First-reacher-wins: later specs hitting an owned
/// bucket are dropped, which biases the corpus toward small ancestors
/// — exactly the bias delta debugging wants.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Corpus {
    entries: BTreeMap<Signature, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Number of owned buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no bucket is owned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `entry` if its bucket is unowned; returns whether the
    /// bucket was new (= the mutation earned coverage).
    pub fn insert_if_new(&mut self, entry: CorpusEntry) -> bool {
        match self.entries.entry(entry.signature.clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(entry);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// The `i`-th entry in deterministic (signature) order, wrapping —
    /// the campaign's parent selector.
    pub fn nth(&self, i: usize) -> Option<&CorpusEntry> {
        (!self.is_empty()).then(|| {
            self.entries
                .values()
                .nth(i % self.entries.len())
                .expect("index is wrapped")
        })
    }

    /// Iterates entries in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }

    /// Writes every entry as `<dir>/<signature-key>.json` (creating
    /// `dir`), the on-disk layout `repro fuzz --corpus-dir` reads
    /// back. One file per bucket keeps diffs reviewable and lets a
    /// minimized repro spec be lifted out with `jq .spec`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for entry in self.entries.values() {
            let json = serde_json::to_string(entry).expect("corpus entries serialize");
            std::fs::write(dir.join(format!("{}.json", entry.signature.key())), json)?;
        }
        Ok(())
    }

    /// Loads every `*.json` corpus entry under `dir`. Missing
    /// directories load as an empty corpus (a fresh campaign).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and malformed entries.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let mut corpus = Corpus::new();
        if !dir.exists() {
            return Ok(corpus);
        }
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("corpus dir {}: {e}", dir.display()))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| format!("corpus entry {}: {e}", path.display()))?;
            let entry: CorpusEntry = serde_json::from_str(&json)
                .map_err(|e| format!("corpus entry {}: {e}", path.display()))?;
            corpus.insert_if_new(entry);
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Signature;
    use crate::gen::seed_corpus;
    use vi_scenario::EngineTuning;

    fn entry(spec: &ScenarioSpec, seed: u64) -> CorpusEntry {
        let outcome = spec.run_with(seed, EngineTuning::DEFAULT.with_telemetry());
        CorpusEntry {
            signature: Signature::of(&outcome),
            spec: spec.clone(),
            seed,
            iteration: 0,
        }
    }

    #[test]
    fn first_reacher_wins_and_order_is_deterministic() {
        let specs = seed_corpus();
        let mut corpus = Corpus::new();
        for spec in &specs {
            assert!(corpus.insert_if_new(entry(spec, 1)));
        }
        assert_eq!(corpus.len(), specs.len());
        // Re-inserting the same buckets earns nothing.
        for spec in &specs {
            assert!(!corpus.insert_if_new(entry(spec, 1)));
        }
        // Parent selection wraps deterministically.
        let a: Vec<String> = (0..8)
            .map(|i| corpus.nth(i).unwrap().spec.name.clone())
            .collect();
        let b: Vec<String> = (0..8)
            .map(|i| corpus.nth(i).unwrap().spec.name.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let specs = seed_corpus();
        let mut corpus = Corpus::new();
        for spec in &specs {
            corpus.insert_if_new(entry(spec, 9));
        }
        let dir = std::env::temp_dir().join(format!("vi-fuzz-corpus-{}", std::process::id()));
        corpus.save(&dir).expect("save corpus");
        let back = Corpus::load(&dir).expect("load corpus");
        assert_eq!(back, corpus);
        std::fs::remove_dir_all(&dir).ok();
    }
}
