//! # vi-fuzz
//!
//! Coverage-guided fuzzing over the [`vi_scenario::ScenarioSpec`]
//! space: an adversarial search for checker violations, audit
//! counterexamples, liveness stalls, and panics that the hand-written
//! catalog never imagined — the Jepsen-style fault-schedule
//! exploration the nemesis `:info` semantics were built for.
//!
//! The loop is classic evolutionary fuzzing, made fully deterministic:
//!
//! * the **generator** (module [`gen`]) seeds the corpus with tiny
//!   specs covering every workload family;
//! * **typed mutators** (module [`mutate`]) perturb one dimension of a
//!   spec at a time — population/placement, mobility, churn windows,
//!   adversary timeline, nemesis composition, traffic mix, workload
//!   knobs — all choices drawn from one seeded RNG via
//!   [`vi_audit::pick`];
//! * every candidate is [`validate`](vi_scenario::ScenarioSpec::validate)d
//!   first — mutated specs are *runnable or rejected, never UB* — and
//!   then executed with telemetry on;
//! * the **coverage signature** (module [`coverage`]) buckets the
//!   run's observable behaviour (resolver-mode counter profile,
//!   channel bands, checker verdicts, liveness `kst`); candidates
//!   reaching a new bucket join the **corpus** (module [`corpus`])
//!   and become future mutation parents;
//! * any failure triggers the **delta-debugging minimizer** (module
//!   [`minimize`]), which shrinks the spec while the failure class
//!   still reproduces, then packages the result as a repro spec plus
//!   an [`vi_scenario::IncidentBundle`] that replays byte-identically
//!   at any worker count.
//!
//! Identical `(FuzzConfig, seed)` pairs produce identical campaigns —
//! same corpus, same findings, same minimized specs — at any sweep
//! worker count, because every run is deterministic per seed and every
//! campaign decision is a pure function of prior (deterministic)
//! results and the campaign RNG.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod minimize;
pub mod mutate;

pub use campaign::{run_campaign, FailureClass, Finding, FuzzConfig, FuzzReport};
pub use corpus::{Corpus, CorpusEntry};
pub use coverage::Signature;
pub use gen::seed_corpus;
pub use minimize::{minimize, MinimizeOutcome};
pub use mutate::{apply, crossover, Mutator, MUTATORS};
