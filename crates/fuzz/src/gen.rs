//! Seed corpus: tiny, fast, *valid* specs covering every workload
//! family. These are the mutation ancestors of everything the
//! campaign ever runs, so they are deliberately small — a few nodes,
//! a few rounds — and deliberately bland: interesting behaviour is
//! the mutators' job, reaching it fast is ours.

use vi_radio::geometry::{Point, Rect};
use vi_radio::{AdversaryKind, RadioConfig};
use vi_scenario::{
    CmSpec, LayoutSpec, NemesisSpec, PlacementSpec, PopulationSpec, ScenarioSpec, TrafficSpec,
    WorkloadSpec,
};
use vi_traffic::AppKind;

/// A line of `n` nodes spaced well inside one region.
fn line(n: usize) -> PopulationSpec {
    PopulationSpec::fixed(
        n,
        PlacementSpec::Line {
            start: Point::new(1.0, 1.0),
            step_x: 0.2,
            step_y: 0.0,
        },
    )
}

fn base(name: &str, n: usize, workload: WorkloadSpec) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        arena: Rect::square(20.0),
        radio: RadioConfig::reliable(10.0, 20.0),
        populations: vec![line(n)],
        adversary: AdversaryKind::None,
        nemesis: NemesisSpec::none(),
        cm: CmSpec::perfect(),
        workload,
    }
}

/// One virtual node centred in the arena.
fn one_vn() -> LayoutSpec {
    LayoutSpec::Explicit {
        locations: vec![Point::new(2.0, 1.0)],
        region_radius: 2.5,
    }
}

/// The ancestral population: one tiny spec per workload family. Every
/// entry validates and runs in well under a second; the
/// majority-register ancestor is deliberately *clean* (no partition) —
/// rediscovering the planted `broken_majority` violation from it is
/// the campaign's acceptance test.
pub fn seed_corpus() -> Vec<ScenarioSpec> {
    vec![
        base("fuzz_cha", 3, WorkloadSpec::ChaClique { instances: 4 }),
        base(
            "fuzz_counter",
            4,
            WorkloadSpec::ViCounter {
                layout: one_vn(),
                virtual_rounds: 6,
            },
        ),
        base(
            "fuzz_register",
            4,
            WorkloadSpec::Traffic {
                app: AppKind::Register,
                layout: one_vn(),
                traffic: TrafficSpec::open(2, 0.5, 10),
                audit: true,
            },
        ),
        base(
            "fuzz_majority",
            4,
            WorkloadSpec::MajorityRegister {
                writes: 6,
                rounds: 24,
                partition_from: None,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ancestor_validates_and_runs_clean() {
        let corpus = seed_corpus();
        assert_eq!(corpus.len(), 4, "one ancestor per workload family");
        for spec in &corpus {
            spec.validate().expect("ancestors validate");
            let out = spec.run(1);
            assert_eq!(out.safety_violations(), 0, "{}", spec.name);
            if let Some(report) = &out.audit {
                assert!(report.ok(), "{} must start clean", spec.name);
            }
        }
    }
}
