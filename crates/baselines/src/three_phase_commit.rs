//! Slotted three-phase commit: the protocol family CHAP is "inspired
//! by" (Section 1.5, refs [41, 42]).
//!
//! Per instance, over a window of `3 + 2(n−1)` rounds: the coordinator
//! proposes (*can-commit*), participants vote in ranked slots, the
//! coordinator *pre-commits*, participants acknowledge in slots, and
//! the coordinator issues *do-commit*. A participant that reaches the
//! end of the window without a do-commit applies the classic
//! termination rule: commit if pre-committed, abort otherwise.
//!
//! The ablation experiment (E12) scripts a lossy pre-commit followed
//! by a coordinator crash: participants that saw the pre-commit commit
//! while the rest abort — an *inconsistent* outcome that plain 3PC
//! admits under partition, whereas CHAP's two veto phases resolve the
//! same uncertainty to a consistent ⊥ (Lemma 5's one-shade spread is
//! exactly what 3PC lacks). This contrast is the paper's "somewhat
//! different approach to recovering from network misbehavior".

use std::any::Any;
use vi_radio::{Process, RoundCtx, RoundReception, WireSized};

/// Wire messages of slotted 3PC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TpcMessage<V> {
    /// Coordinator's proposal.
    CanCommit(V),
    /// Ranked yes-vote.
    VoteYes,
    /// Coordinator's pre-commit.
    PreCommit,
    /// Ranked pre-commit acknowledgement.
    AckPre,
    /// Coordinator's final commit order.
    DoCommit,
}

impl<V: WireSized> WireSized for TpcMessage<V> {
    fn wire_size(&self) -> usize {
        match self {
            TpcMessage::CanCommit(v) => 1 + v.wire_size(),
            _ => 1,
        }
    }
}

/// Per-instance outcome at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpcDecision {
    /// The value was committed.
    Committed,
    /// The instance aborted.
    Aborted,
}

/// One ranked 3PC node (rank 0 coordinates).
pub struct ThreePhaseCommit<V> {
    rank: usize,
    n: usize,
    make_value: Box<dyn FnMut(u64) -> V>,
    // Current-instance state.
    proposal: Option<V>,
    votes: usize,
    precommitted: bool,
    acks: usize,
    do_commit: bool,
    /// Per-instance decisions.
    decisions: Vec<TpcDecision>,
    /// Instances that ended via the uncertainty termination rule
    /// (window expired without do-commit after voting yes).
    uncertain_terminations: u64,
}

impl<V: Clone + 'static> ThreePhaseCommit<V> {
    /// Creates node `rank` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n` or `n < 2`.
    pub fn new(rank: usize, n: usize, make_value: Box<dyn FnMut(u64) -> V>) -> Self {
        assert!(n >= 2 && rank < n, "need n >= 2 and rank < n");
        ThreePhaseCommit {
            rank,
            n,
            make_value,
            proposal: None,
            votes: 0,
            precommitted: false,
            acks: 0,
            do_commit: false,
            decisions: Vec::new(),
            uncertain_terminations: 0,
        }
    }

    /// Rounds per instance: `3 + 2(n−1)`.
    pub fn window(n: usize) -> u64 {
        3 + 2 * (n as u64 - 1)
    }

    /// Decisions so far.
    pub fn decisions(&self) -> &[TpcDecision] {
        &self.decisions
    }

    /// Instances terminated under uncertainty.
    pub fn uncertain_terminations(&self) -> u64 {
        self.uncertain_terminations
    }

    fn participants(&self) -> u64 {
        self.n as u64 - 1
    }
}

impl<V: Clone + WireSized + 'static> Process<TpcMessage<V>> for ThreePhaseCommit<V> {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<TpcMessage<V>> {
        let w = Self::window(self.n);
        let slot = ctx.round % w;
        let m = self.participants();
        match slot {
            0 => {
                self.proposal = None;
                self.votes = 0;
                self.precommitted = false;
                self.acks = 0;
                self.do_commit = false;
                (self.rank == 0).then(|| {
                    let instance = ctx.round / w + 1;
                    TpcMessage::CanCommit((self.make_value)(instance))
                })
            }
            s if s >= 1 && s <= m => {
                (self.rank as u64 == s && self.proposal.is_some()).then_some(TpcMessage::VoteYes)
            }
            s if s == m + 1 => {
                (self.rank == 0 && self.votes >= m as usize).then_some(TpcMessage::PreCommit)
            }
            s if s >= m + 2 && s <= 2 * m + 1 => {
                (self.rank as u64 == s - m - 1 && self.precommitted).then_some(TpcMessage::AckPre)
            }
            _ => (self.rank == 0 && self.acks >= m as usize).then_some(TpcMessage::DoCommit),
        }
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, TpcMessage<V>>) {
        let w = Self::window(self.n);
        let slot = ctx.round % w;
        for msg in rx.messages {
            match msg {
                TpcMessage::CanCommit(v) => self.proposal = Some(v.clone()),
                TpcMessage::VoteYes => self.votes += 1,
                TpcMessage::PreCommit => self.precommitted = true,
                TpcMessage::AckPre => self.acks += 1,
                TpcMessage::DoCommit => self.do_commit = true,
            }
        }
        if slot == w - 1 {
            let decision = if self.do_commit {
                TpcDecision::Committed
            } else if self.precommitted {
                // Termination rule under uncertainty: a pre-committed
                // node commits.
                self.uncertain_terminations += 1;
                TpcDecision::Committed
            } else {
                if self.proposal.is_some() {
                    self.uncertain_terminations += 1;
                }
                TpcDecision::Aborted
            };
            self.decisions.push(decision);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_radio::adversary::ScriptedAdversary;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;
    use vi_radio::{Engine, EngineConfig, NodeId, NodeSpec, RadioConfig};

    fn build(
        n: usize,
        crash_coord_at: Option<u64>,
        radio: RadioConfig,
    ) -> (Engine<TpcMessage<u64>>, Vec<NodeId>) {
        let mut engine = Engine::new(EngineConfig {
            radio,
            seed: 5,
            record_trace: false,
        });
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let mut spec = NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                    Box::new(ThreePhaseCommit::<u64>::new(i, n, Box::new(|k| k)))
                        as Box<dyn vi_radio::Process<TpcMessage<u64>>>,
                );
                if i == 0 {
                    if let Some(r) = crash_coord_at {
                        spec = spec.crash_at(r);
                    }
                }
                engine.add_node(spec)
            })
            .collect();
        (engine, ids)
    }

    #[test]
    fn commits_on_clean_channel() {
        let n = 4;
        let (mut engine, ids) = build(n, None, RadioConfig::reliable(10.0, 20.0));
        engine.run(3 * ThreePhaseCommit::<u64>::window(n));
        for &id in &ids {
            let node: &ThreePhaseCommit<u64> = engine.process(id).unwrap();
            assert_eq!(
                node.decisions(),
                &[TpcDecision::Committed; 3],
                "all instances commit"
            );
            assert_eq!(node.uncertain_terminations(), 0);
        }
    }

    #[test]
    fn partitioned_precommit_plus_coordinator_crash_is_inconsistent() {
        // The E12 scenario: the pre-commit (round m+1 = 4 with n=4)
        // reaches node 1 but is dropped at nodes 2 and 3; the
        // coordinator crashes before do-commit. Node 1's termination
        // rule commits; nodes 2 and 3 abort — disagreement.
        let n = 4;
        let w = ThreePhaseCommit::<u64>::window(n); // 9
        let radio = RadioConfig::stabilizing(10.0, 20.0, 1_000);
        let (mut engine, ids) = build(n, Some(5), radio);
        let mut adv = ScriptedAdversary::new();
        adv.drop(4, ids[0], ids[2]);
        adv.drop(4, ids[0], ids[3]);
        engine.set_adversary(Box::new(adv));
        engine.run(w);
        let d1 = engine
            .process::<ThreePhaseCommit<u64>>(ids[1])
            .unwrap()
            .decisions()[0];
        let d2 = engine
            .process::<ThreePhaseCommit<u64>>(ids[2])
            .unwrap()
            .decisions()[0];
        assert_eq!(d1, TpcDecision::Committed, "pre-committed node commits");
        assert_eq!(d2, TpcDecision::Aborted, "uncertain node aborts");
    }

    #[test]
    fn window_is_linear_in_n() {
        assert_eq!(ThreePhaseCommit::<u64>::window(2), 5);
        assert_eq!(ThreePhaseCommit::<u64>::window(4), 9);
        assert_eq!(ThreePhaseCommit::<u64>::window(10), 21);
    }
}
