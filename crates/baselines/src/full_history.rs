//! The "naïve solution" of Section 3.4: broadcast the entire history
//! every instance.
//!
//! "By contrast, a naïve solution might include the entire history in
//! every message." This baseline does exactly that: per instance the
//! leader appends its proposal and broadcasts the complete history;
//! receivers adopt it wholesale. One round per instance, trivially
//! consistent on a clean channel — but the message size grows
//! *linearly* with execution length, which is what experiment E2
//! contrasts with CHAP's constant-size ballots (Theorem 14).

use std::any::Any;
use vi_contention::{ChannelFeedback, CmSlot, SharedCm};
use vi_core::cha::Proposer;
use vi_radio::{Process, RoundCtx, RoundReception, WireSized};

/// The full history, re-broadcast every instance.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FullHistoryMessage<V> {
    /// One decided value per instance `1..=k` (⊥ entries are `None`).
    pub history: Vec<Option<V>>,
}

impl<V: WireSized> WireSized for FullHistoryMessage<V> {
    fn wire_size(&self) -> usize {
        8 + self
            .history
            .iter()
            .map(|e| 1 + e.as_ref().map_or(0, WireSized::wire_size))
            .sum::<usize>()
    }
}

/// One participant of the full-history RSM baseline.
pub struct FullHistoryNode<V> {
    proposer: Box<dyn Proposer<V>>,
    cm: SharedCm,
    slot: CmSlot,
    history: Vec<Option<V>>,
    /// Per-instance outcome: `Some(len)` if a history of that length
    /// was adopted, `None` for ⊥.
    outputs: Vec<Option<usize>>,
    was_active: bool,
    /// Wire size of each message this node broadcast (the E2 metric).
    sent_sizes: Vec<usize>,
}

impl<V: Clone + Ord + WireSized + 'static> FullHistoryNode<V> {
    /// Creates a participant sharing the region's contention manager.
    pub fn new(proposer: Box<dyn Proposer<V>>, cm: SharedCm) -> Self {
        let slot = cm.register();
        FullHistoryNode {
            proposer,
            cm,
            slot,
            history: Vec::new(),
            outputs: Vec::new(),
            was_active: false,
            sent_sizes: Vec::new(),
        }
    }

    /// The adopted history.
    pub fn history(&self) -> &[Option<V>] {
        &self.history
    }

    /// Per-instance outcomes.
    pub fn outputs(&self) -> &[Option<usize>] {
        &self.outputs
    }

    /// Sizes of the messages this node broadcast, in instance order.
    pub fn sent_sizes(&self) -> &[usize] {
        &self.sent_sizes
    }
}

impl<V: Clone + Ord + WireSized + 'static> Process<FullHistoryMessage<V>> for FullHistoryNode<V> {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<FullHistoryMessage<V>> {
        // One instance per round: instance = round + 1.
        let instance = ctx.round + 1;
        let advice = self.cm.contend(self.slot, ctx.round, ctx.pos);
        self.was_active = advice.is_active();
        if !self.was_active {
            return None;
        }
        let v = self.proposer.propose(instance);
        let mut h = self.history.clone();
        h.resize(instance as usize, None);
        h[instance as usize - 1] = Some(v);
        let msg = FullHistoryMessage { history: h };
        self.sent_sizes.push(msg.wire_size());
        Some(msg)
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, FullHistoryMessage<V>>) {
        let feedback = if self.was_active {
            if rx.collision {
                ChannelFeedback::TxCollided
            } else {
                ChannelFeedback::TxSucceeded
            }
        } else if rx.collision {
            ChannelFeedback::HeardCollision
        } else if !rx.messages.is_empty() {
            ChannelFeedback::HeardOther
        } else {
            ChannelFeedback::Quiet
        };
        self.cm.observe(self.slot, ctx.round, feedback);

        if rx.collision || rx.messages.is_empty() {
            self.outputs.push(None);
            return;
        }
        let adopted = rx.messages.iter().min().expect("nonempty").clone();
        self.history = adopted.history;
        self.outputs.push(Some(self.history.len()));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_contention::OracleCm;
    use vi_core::cha::TaggedProposer;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;
    use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

    fn run(n: usize, rounds: u64) -> (Engine<FullHistoryMessage<u64>>, Vec<vi_radio::NodeId>) {
        let mut engine = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 3,
            record_trace: false,
        });
        let cm = SharedCm::new(OracleCm::perfect());
        let ids: Vec<_> = (0..n)
            .map(|i| {
                engine.add_node(NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.3, 0.0))),
                    Box::new(FullHistoryNode::new(
                        Box::new(TaggedProposer::new(i as u64)),
                        cm.clone(),
                    )),
                ))
            })
            .collect();
        engine.run(rounds);
        (engine, ids)
    }

    #[test]
    fn histories_replicate() {
        let (engine, ids) = run(3, 10);
        let leader: &FullHistoryNode<u64> = engine.process(ids[0]).unwrap();
        let follower: &FullHistoryNode<u64> = engine.process(ids[2]).unwrap();
        assert_eq!(leader.history(), follower.history());
        assert!(follower.history().len() >= 9);
    }

    #[test]
    fn message_size_grows_linearly() {
        let (engine, ids) = run(2, 50);
        let leader: &FullHistoryNode<u64> = engine.process(ids[0]).unwrap();
        let sizes = leader.sent_sizes();
        assert!(sizes.len() >= 49);
        // Strictly growing: each instance appends one entry.
        assert!(sizes.windows(2).all(|w| w[1] > w[0]));
        let growth = sizes[40] - sizes[10];
        assert!(growth >= 30 * 9, "≈9 bytes per appended entry: {growth}");
        assert_eq!(engine.stats().max_message_bytes, *sizes.last().unwrap());
    }

    #[test]
    fn one_round_per_instance() {
        let (engine, ids) = run(2, 20);
        let node: &FullHistoryNode<u64> = engine.process(ids[1]).unwrap();
        assert_eq!(node.outputs().len(), 20);
    }
}
