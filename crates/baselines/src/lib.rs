//! # vi-baselines
//!
//! Baseline replication protocols run on the same simulated channel as
//! CHAP, implementing the comparison points the paper argues against:
//!
//! * [`full_history`] — the "naïve solution" of Section 3.4: the
//!   leader re-broadcasts the *entire* history each instance, so
//!   message size grows linearly with execution length (vs. CHAP's
//!   constant, Theorem 14).
//! * [`majority`] — a majority-acknowledgement consensus in the style
//!   of classic replicated-state-machine protocols (Section 1.5: "most
//!   such protocols require at least a majority of the nodes to send
//!   messages; in a wireless network this creates unacceptable channel
//!   contention and long delays") — Θ(n) rounds per decision.
//! * [`three_phase_commit`] — the classic 3PC pattern CHAP is
//!   "inspired by", used in the recovery-behaviour ablation (E12): on
//!   a coordinator failure mid-protocol, plain 3PC *blocks*, while
//!   CHAP converges by resolving instances to ⊥.
//! * [`majority_register`] — a majority-acked register with
//!   quorum-free **local reads**: the deliberately broken baseline the
//!   `vi-audit` linearizability checker catches red-handed under a
//!   partition (see `examples/audit_demo.rs`).

pub mod full_history;
pub mod majority;
pub mod majority_register;
pub mod three_phase_commit;

pub use full_history::{FullHistoryMessage, FullHistoryNode};
pub use majority::{MajorityConsensus, MajorityMessage};
pub use majority_register::{
    collect_register_ops, MajRegMessage, MajorityRegister, ReadRecord, WriteRecord,
};
pub use three_phase_commit::{ThreePhaseCommit, TpcDecision, TpcMessage};
