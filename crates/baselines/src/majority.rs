//! Majority-acknowledgement consensus: the classic wired-network RSM
//! pattern, transplanted to the broadcast channel.
//!
//! Section 1.5: "most such protocols require at least a majority of
//! the nodes to send messages; in a wireless network this creates
//! unacceptable channel contention and long delays." Because only one
//! message fits on the channel per round, collecting `⌊n/2⌋ + 1`
//! acknowledgements takes `Θ(n)` rounds per decision — the cost
//! experiment E3 contrasts with CHAP's constant three rounds.
//!
//! The protocol per instance, over a window of `1 + ⌊n/2⌋` rounds:
//! round 0 the leader proposes; round `i ∈ 1..=⌊n/2⌋` the `i`-th-ranked
//! node acknowledges (slotted, to avoid self-inflicted collisions).
//! An instance decides at a node if it saw the proposal and all
//! required acks (the leader counts itself towards the majority).
//! Note this baseline *requires ranked identities* — something the
//! paper's model explicitly does not grant mobile nodes, which is
//! itself part of the argument for CHA.

use std::any::Any;
use vi_radio::{Process, RoundCtx, RoundReception, WireSized};

/// Wire messages of the majority baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MajorityMessage<V> {
    /// The leader's proposal for the current instance.
    Propose(V),
    /// A ranked acknowledgement.
    Ack,
}

impl<V: WireSized> WireSized for MajorityMessage<V> {
    fn wire_size(&self) -> usize {
        match self {
            MajorityMessage::Propose(v) => 1 + v.wire_size(),
            MajorityMessage::Ack => 1,
        }
    }
}

/// One ranked participant of the majority baseline.
pub struct MajorityConsensus<V> {
    rank: usize,
    n: usize,
    make_value: Box<dyn FnMut(u64) -> V>,
    /// Current-instance bookkeeping.
    got_proposal: Option<V>,
    acks_seen: usize,
    lost: bool,
    /// Per-instance decisions (`Some(value)` or ⊥).
    decisions: Vec<Option<V>>,
}

impl<V: Clone + 'static> MajorityConsensus<V> {
    /// Creates participant `rank` of `n` (rank 0 is the leader).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n` or `n == 0`.
    pub fn new(rank: usize, n: usize, make_value: Box<dyn FnMut(u64) -> V>) -> Self {
        assert!(n > 0 && rank < n, "rank {rank} out of 0..{n}");
        MajorityConsensus {
            rank,
            n,
            make_value,
            got_proposal: None,
            acks_seen: 0,
            lost: false,
            decisions: Vec::new(),
        }
    }

    /// Rounds one instance occupies: `1 + ⌊n/2⌋` (a proposal round
    /// plus one slot per required participant ack) — Θ(n).
    pub fn window(n: usize) -> u64 {
        1 + Self::needed_acks(n) as u64
    }

    /// Participant acks required: the leader counts itself towards the
    /// majority of `⌊n/2⌋ + 1`, so `⌊n/2⌋` others must ack.
    pub fn needed_acks(n: usize) -> usize {
        n / 2
    }

    /// Per-instance decisions so far.
    pub fn decisions(&self) -> &[Option<V>] {
        &self.decisions
    }

    fn slot(&self, round: u64) -> u64 {
        round % Self::window(self.n)
    }
}

impl<V: Clone + WireSized + 'static> Process<MajorityMessage<V>> for MajorityConsensus<V> {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<MajorityMessage<V>> {
        let slot = self.slot(ctx.round);
        if slot == 0 {
            // New instance.
            self.got_proposal = None;
            self.acks_seen = 0;
            self.lost = false;
            if self.rank == 0 {
                let instance = ctx.round / Self::window(self.n) + 1;
                return Some(MajorityMessage::Propose((self.make_value)(instance)));
            }
            return None;
        }
        // Ack slots 1..=needed, by rank; only ack if the proposal
        // arrived intact.
        (slot as usize == self.rank && self.got_proposal.is_some() && !self.lost)
            .then_some(MajorityMessage::Ack)
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, MajorityMessage<V>>) {
        let slot = self.slot(ctx.round);
        if rx.collision {
            self.lost = true;
        }
        for m in rx.messages {
            match m {
                MajorityMessage::Propose(v) => self.got_proposal = Some(v.clone()),
                MajorityMessage::Ack => self.acks_seen += 1,
            }
        }
        if slot == Self::window(self.n) - 1 {
            // Instance concludes.
            let decided = (!self.lost
                && self.acks_seen >= Self::needed_acks(self.n)
                && self.got_proposal.is_some())
            .then(|| self.got_proposal.clone().expect("checked"));
            self.decisions.push(decided);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;
    use vi_radio::{Engine, EngineConfig, NodeSpec, RadioConfig};

    fn run(n: usize, instances: u64) -> (Engine<MajorityMessage<u64>>, Vec<vi_radio::NodeId>) {
        let mut engine = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 3,
            record_trace: false,
        });
        let ids: Vec<_> = (0..n)
            .map(|i| {
                engine.add_node(NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                    Box::new(MajorityConsensus::new(
                        i,
                        n,
                        Box::new(move |k| k * 100 + i as u64),
                    )),
                ))
            })
            .collect();
        engine.run(instances * MajorityConsensus::<u64>::window(n));
        (engine, ids)
    }

    #[test]
    fn decides_on_clean_channel() {
        let (engine, ids) = run(5, 4);
        for &id in &ids {
            let node: &MajorityConsensus<u64> = engine.process(id).unwrap();
            assert_eq!(node.decisions().len(), 4);
            for (k, d) in node.decisions().iter().enumerate() {
                assert_eq!(*d, Some((k as u64 + 1) * 100), "leader's value decided");
            }
        }
    }

    #[test]
    fn window_grows_linearly_with_n() {
        assert_eq!(MajorityConsensus::<u64>::window(2), 2);
        assert_eq!(MajorityConsensus::<u64>::window(4), 3);
        assert_eq!(MajorityConsensus::<u64>::window(16), 9);
        assert_eq!(MajorityConsensus::<u64>::window(64), 33);
        assert_eq!(MajorityConsensus::<u64>::window(256), 129);
    }

    #[test]
    fn needed_acks_is_half() {
        assert_eq!(MajorityConsensus::<u64>::needed_acks(5), 2);
        assert_eq!(MajorityConsensus::<u64>::needed_acks(6), 3);
    }

    #[test]
    fn crashed_acker_blocks_decisions() {
        // Rank-1 crash: its ack slot stays silent, majority of 2 is
        // still reachable with ranks 1..=2 acking... with n=3 majority
        // is 2 (ranks 1 and 2). Crash rank 1 ⇒ only one ack ⇒ ⊥ forever.
        let n = 3;
        let mut engine = Engine::new(EngineConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            seed: 3,
            record_trace: false,
        });
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let spec = NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                    Box::new(MajorityConsensus::<u64>::new(i, n, Box::new(|k| k)))
                        as Box<dyn vi_radio::Process<MajorityMessage<u64>>>,
                );
                let spec = if i == 1 { spec.crash_at(0) } else { spec };
                engine.add_node(spec)
            })
            .collect();
        engine.run(4 * MajorityConsensus::<u64>::window(n));
        let node: &MajorityConsensus<u64> = engine.process(ids[2]).unwrap();
        assert!(node.decisions().iter().all(|d| d.is_none()));
    }

    #[test]
    #[should_panic(expected = "out of 0..")]
    fn rejects_bad_rank() {
        let _ = MajorityConsensus::<u64>::new(3, 3, Box::new(|k| k));
    }
}
