//! A majority-acknowledged register with **local reads** — a
//! deliberately broken baseline for the consistency audit.
//!
//! The classic wired-network shortcut: writes are replicated with a
//! majority of acknowledgements (the [`super::majority`] pattern), but
//! reads return the *local* replica copy without any quorum — "reads
//! are cheap". On a reliable channel the shortcut is invisible. Under
//! a partition it is a textbook linearizability violation: a replica
//! cut off from the leader keeps serving its stale copy long after
//! newer writes completed at a majority. The paper's virtual-node
//! register avoids the bug structurally — there is one agreed replica
//! state, and *every* response routes through it — which is exactly
//! what the `vi-audit` WGL checker certifies in E17. This baseline
//! exists so `examples/audit_demo.rs` can show the checker catching
//! the violation, minimized witness and all.

use std::any::Any;
use vi_audit::linearizability::PENDING;
use vi_audit::{RegOp, RegOpKind};
use vi_radio::{Engine, NodeId, Process, RoundCtx, RoundReception, WireSized};

/// Wire messages of the majority register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MajRegMessage {
    /// The leader replicates `value` under `tag`.
    Write {
        /// Monotone write tag (the window index).
        tag: u64,
        /// The written value.
        value: u64,
    },
    /// A ranked replica acknowledges `tag`.
    Ack {
        /// The acknowledged tag.
        tag: u64,
    },
}

impl WireSized for MajRegMessage {
    fn wire_size(&self) -> usize {
        match self {
            MajRegMessage::Write { .. } => 17,
            MajRegMessage::Ack { .. } => 9,
        }
    }
}

/// One write's lifecycle at the leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteRecord {
    /// The written value.
    pub value: u64,
    /// Round the write was broadcast.
    pub invoked: u64,
    /// Round the majority was reached (`None` = never completed).
    pub completed: Option<u64>,
}

/// One local read (instantaneous: no messages are exchanged — that is
/// the bug).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// Round of the read.
    pub round: u64,
    /// The local replica value returned.
    pub value: u64,
}

/// One ranked participant of the majority register (rank 0 leads and
/// writes; every participant serves local reads).
pub struct MajorityRegister {
    rank: usize,
    n: usize,
    writes_total: u64,
    /// Local replica copy.
    tag: u64,
    value: u64,
    /// Leader bookkeeping for the in-flight write.
    acks_seen: usize,
    /// Leader: every write's lifecycle.
    pub write_log: Vec<WriteRecord>,
    /// Every node: local reads, one per replication window.
    pub read_log: Vec<ReadRecord>,
}

impl MajorityRegister {
    /// Creates participant `rank` of `n`; the leader (rank 0) issues
    /// one write per replication window, `writes_total` in all.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n` or `n == 0`.
    pub fn new(rank: usize, n: usize, writes_total: u64) -> Self {
        assert!(n > 0 && rank < n, "rank {rank} out of 0..{n}");
        MajorityRegister {
            rank,
            n,
            writes_total,
            tag: 0,
            value: 0,
            acks_seen: 0,
            write_log: Vec::new(),
            read_log: Vec::new(),
        }
    }

    /// Rounds one write window occupies (proposal + ranked ack slots).
    pub fn window(n: usize) -> u64 {
        1 + Self::needed_acks(n) as u64
    }

    /// Participant acks required for a majority (the leader counts
    /// itself).
    pub fn needed_acks(n: usize) -> usize {
        n / 2
    }

    fn slot(&self, round: u64) -> u64 {
        round % Self::window(self.n)
    }
}

impl Process<MajRegMessage> for MajorityRegister {
    fn transmit(&mut self, ctx: &RoundCtx) -> Option<MajRegMessage> {
        let slot = self.slot(ctx.round);
        let k = ctx.round / Self::window(self.n);
        if slot == 0 {
            self.acks_seen = 0;
            if self.rank == 0 && k < self.writes_total {
                let tag = k + 1;
                let value = 1000 + tag;
                // Apply locally; the leader is part of the majority.
                self.tag = tag;
                self.value = value;
                self.write_log.push(WriteRecord {
                    value,
                    invoked: ctx.round,
                    completed: None,
                });
                return Some(MajRegMessage::Write { tag, value });
            }
            return None;
        }
        // Ranked ack slots: ack iff this window's write arrived.
        (slot as usize == self.rank && self.tag == k + 1)
            .then_some(MajRegMessage::Ack { tag: self.tag })
    }

    fn deliver(&mut self, ctx: &RoundCtx, rx: RoundReception<'_, MajRegMessage>) {
        for m in rx.messages {
            match m {
                MajRegMessage::Write { tag, value } => {
                    if *tag > self.tag {
                        self.tag = *tag;
                        self.value = *value;
                    }
                }
                MajRegMessage::Ack { tag } => {
                    if self.rank == 0 && *tag == self.tag {
                        self.acks_seen += 1;
                        if self.acks_seen >= Self::needed_acks(self.n) {
                            if let Some(w) = self.write_log.last_mut() {
                                if w.completed.is_none() {
                                    w.completed = Some(ctx.round);
                                }
                            }
                        }
                    }
                }
            }
        }
        // The bug: a "read" is served straight from the local copy, no
        // quorum, no messages. One read per window, at its last slot.
        if self.slot(ctx.round) == Self::window(self.n) - 1 {
            self.read_log.push(ReadRecord {
                round: ctx.round,
                value: self.value,
            });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Flattens every node's write/read logs into the WGL register
/// operations the `vi-audit` checker consumes (node order, writes
/// before reads per node; a write that never reached a majority is
/// pending, a local read is instantaneous). Shared by
/// `examples/audit_demo.rs` and the unit tests, so the demo and the
/// tests cannot diverge.
pub fn collect_register_ops(engine: &Engine<MajRegMessage>, ids: &[NodeId]) -> Vec<RegOp> {
    let mut ops = Vec::new();
    for &id in ids {
        let node: &MajorityRegister = engine.process(id).expect("majority-register node");
        for w in &node.write_log {
            ops.push(RegOp {
                id: ops.len() as u64,
                kind: RegOpKind::Write { value: w.value },
                inv: w.invoked,
                ret: w.completed.unwrap_or(PENDING),
            });
        }
        for r in &node.read_log {
            ops.push(RegOp {
                id: ops.len() as u64,
                kind: RegOpKind::Read { returned: r.value },
                inv: r.round,
                ret: r.round,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_audit::{check_register, LinResult};
    use vi_radio::geometry::Point;
    use vi_radio::mobility::Static;
    use vi_radio::{Engine, EngineConfig, NodeId, NodeSpec, RadioConfig, ScriptedAdversary};

    fn build(n: usize, writes: u64, rounds: u64, partition_from: Option<u64>) -> Vec<RegOp> {
        let mut engine: Engine<MajRegMessage> = Engine::new(EngineConfig {
            radio: RadioConfig::stabilizing(10.0, 20.0, u64::MAX),
            seed: 5,
            record_trace: false,
        });
        if let Some(from) = partition_from {
            // Cut the last replica off: it still serves local reads.
            let mut adv = ScriptedAdversary::new();
            for r in from..rounds {
                adv.drop_all_to(r, NodeId::from(n - 1));
            }
            engine.set_adversary(Box::new(adv));
        }
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                engine.add_node(NodeSpec::new(
                    Box::new(Static::new(Point::new(i as f64 * 0.2, 0.0))),
                    Box::new(MajorityRegister::new(i, n, writes)),
                ))
            })
            .collect();
        engine.run(rounds);
        collect_register_ops(&engine, &ids)
    }

    #[test]
    fn clean_channel_hides_the_bug() {
        let ops = build(4, 6, 20, None);
        assert!(
            ops.iter()
                .any(|o| matches!(o.kind, RegOpKind::Write { .. })),
            "writes happened"
        );
        assert_eq!(check_register(&ops), LinResult::Ok);
    }

    #[test]
    fn partition_exposes_stale_local_reads() {
        // Partition the last replica from round 6 on: the leader keeps
        // completing writes with the remaining majority while the cut
        // replica serves its stale copy.
        let ops = build(4, 8, 24, Some(6));
        let LinResult::Violation { witness } = check_register(&ops) else {
            panic!("local reads behind a partition must fail linearizability");
        };
        assert!(
            witness.len() <= 4,
            "witness is minimized to the contradiction: {witness:?}"
        );
        assert!(
            witness.iter().any(|l| l.contains('R')),
            "a stale read appears in the witness: {witness:?}"
        );
    }

    #[test]
    fn window_matches_the_majority_baseline() {
        assert_eq!(MajorityRegister::window(4), 3);
        assert_eq!(MajorityRegister::needed_acks(4), 2);
        assert_eq!(MajorityRegister::window(5), 3);
    }
}
