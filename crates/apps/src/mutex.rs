//! Distributed mutual exclusion on a virtual node.
//!
//! The robot-coordination motivation (paper references \[4, 27\])
//! reduces to coordination primitives; the simplest is a lock. A
//! virtual node makes an ideal lock server: it is a single reliable
//! authority at a known location, so the service is a FIFO queue and
//! mutual exclusion follows from the virtual node's determinism —
//! replicas never disagree about who holds the lock, because the
//! holder is a function of the agreed history.
//!
//! Clients request the lock, hold it for a fixed number of virtual
//! rounds after the grant arrives, and release it. The tests assert
//! the safety property end-to-end: no two clients' holding intervals
//! ever overlap.

use serde::{Deserialize, Serialize};
use vi_core::vi::{ClientApp, VirtualAutomaton, VirtualInput, VirtualReception, VnCtx};
use vi_radio::geometry::Point;
use vi_radio::WireSized;

/// Messages of the lock service.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LockMsg {
    /// A client asks for the lock.
    Request {
        /// The requesting client's application-level id.
        client: u32,
    },
    /// The holder gives the lock back.
    Release {
        /// The releasing client.
        client: u32,
    },
    /// The virtual node grants the lock.
    Grant {
        /// The new holder.
        client: u32,
    },
}

impl LockMsg {
    /// The client a `Grant` names, if this is a grant (the response
    /// matcher load generators key completions on).
    pub fn granted_client(&self) -> Option<u32> {
        match self {
            LockMsg::Grant { client } => Some(*client),
            _ => None,
        }
    }
}

impl WireSized for LockMsg {
    fn wire_size(&self) -> usize {
        5
    }
}

/// The lock-server automaton.
#[derive(Clone, Copy, Debug, Default)]
pub struct LockVn;

/// State of [`LockVn`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockState {
    /// The current holder, if any.
    pub holder: Option<u32>,
    /// Waiting clients, FIFO.
    pub queue: Vec<u32>,
    /// Complete grant history (client ids in grant order), for audits.
    pub grant_log: Vec<u32>,
}

impl VirtualAutomaton for LockVn {
    type Msg = LockMsg;
    type State = LockState;

    fn init(&self) -> LockState {
        LockState::default()
    }

    fn step(
        &self,
        state: &mut LockState,
        ctx: VnCtx,
        input: &VirtualInput<LockMsg>,
    ) -> Option<LockMsg> {
        for m in &input.messages {
            match m {
                LockMsg::Request { client } => {
                    let queued = state.queue.contains(client);
                    let holding = state.holder == Some(*client);
                    if !queued && !holding {
                        state.queue.push(*client);
                    }
                }
                LockMsg::Release { client } => {
                    if state.holder == Some(*client) {
                        state.holder = None;
                    }
                }
                LockMsg::Grant { .. } => {}
            }
        }
        // Grant to the head of the queue when free. The grant message
        // goes out in the next vn phase; the holder is committed *now*
        // (deterministically, as part of the agreed history), so
        // replicas can never disagree about ownership.
        if ctx.next_scheduled && state.holder.is_none() {
            if let Some(&next) = state.queue.first() {
                state.queue.remove(0);
                state.holder = Some(next);
                state.grant_log.push(next);
                return Some(LockMsg::Grant { client: next });
            }
        }
        None
    }
}

/// The client's protocol phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientPhase {
    /// Not holding; requesting (on stagger slots) until granted.
    Requesting,
    /// In the critical section until the given virtual round.
    Holding {
        /// First virtual round after the critical section.
        until: u64,
    },
    /// Retrying the release on stagger slots (a single release
    /// broadcast can be lost to a client-phase collision, which would
    /// wedge the lock forever — retries make release reliable).
    Releasing {
        /// Remaining retry budget.
        retries: u8,
    },
    /// All wanted acquisitions completed.
    Done,
}

/// A client that repeatedly acquires the lock, holds it for
/// `hold_for` virtual rounds, and releases it.
pub struct LockClient {
    id: u32,
    hold_for: u64,
    rounds_wanted: u64,
    phase: ClientPhase,
    /// Completed holding intervals as `(acquired_vr, released_vr)`.
    pub held: Vec<(u64, u64)>,
}

impl LockClient {
    /// Creates a client that keeps contending for the lock until it
    /// has completed `rounds_wanted` acquisitions.
    pub fn new(id: u32, hold_for: u64, rounds_wanted: u64) -> Self {
        LockClient {
            id,
            hold_for,
            rounds_wanted,
            phase: ClientPhase::Requesting,
            held: Vec::new(),
        }
    }

    /// Broadcasts collide if two clients speak in the same client
    /// phase; stagger by client id.
    fn my_slot(&self, vr: u64) -> bool {
        vr % 3 == u64::from(self.id % 3)
    }
}

impl ClientApp<LockMsg> for LockClient {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        _pos: Point,
        prev: &VirtualReception<LockMsg>,
    ) -> Option<LockMsg> {
        match self.phase {
            ClientPhase::Requesting => {
                let granted = prev
                    .messages
                    .iter()
                    .any(|m| matches!(m, LockMsg::Grant { client } if *client == self.id));
                if granted {
                    self.phase = ClientPhase::Holding {
                        until: vr + self.hold_for,
                    };
                    return None;
                }
                self.my_slot(vr)
                    .then_some(LockMsg::Request { client: self.id })
            }
            ClientPhase::Holding { until } if vr >= until => {
                self.held.push((until - self.hold_for, vr));
                self.phase = ClientPhase::Releasing { retries: 3 };
                // First release attempt happens on the next stagger
                // slot (falls through below on later rounds).
                self.on_virtual_round(vr, _pos, prev)
            }
            ClientPhase::Holding { .. } => None, // in the critical section
            ClientPhase::Releasing { retries } => {
                if !self.my_slot(vr) {
                    return None;
                }
                let retries = retries - 1;
                self.phase = if retries == 0 {
                    if self.held.len() as u64 >= self.rounds_wanted {
                        ClientPhase::Done
                    } else {
                        ClientPhase::Requesting
                    }
                } else {
                    ClientPhase::Releasing { retries }
                };
                Some(LockMsg::Release { client: self.id })
            }
            ClientPhase::Done => None,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_core::vi::{VnId, VnLayout, World, WorldConfig};
    use vi_radio::mobility::Static;
    use vi_radio::{NodeId, RadioConfig};

    fn lock_world(clients: u32) -> (World<LockVn>, Vec<NodeId>) {
        let vn = Point::new(50.0, 50.0);
        let layout = VnLayout::new(vec![vn], 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout,
            automaton: LockVn,
            seed: 9,
            record_trace: false,
        });
        world.add_device(Box::new(Static::new(Point::new(vn.x, vn.y - 0.6))), None);
        let ids = (0..clients)
            .map(|i| {
                world.add_device(
                    Box::new(Static::new(Point::new(
                        vn.x - 0.6 + 0.4 * i as f64,
                        vn.y + 0.3,
                    ))),
                    Some(Box::new(LockClient::new(i, 2, 2))),
                )
            })
            .collect();
        (world, ids)
    }

    #[test]
    fn mutual_exclusion_holds() {
        let (mut world, ids) = lock_world(3);
        world.run_virtual_rounds(60);
        // Collect completed holding intervals from every client.
        let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let c: &LockClient = world.device(id).client::<LockClient>().unwrap();
            assert!(
                !c.held.is_empty(),
                "client {i} never acquired the lock: starvation"
            );
            for &(a, r) in &c.held {
                intervals.push((i as u32, a, r));
            }
        }
        // No two clients' intervals overlap.
        for (i, &(ca, a1, r1)) in intervals.iter().enumerate() {
            for &(cb, a2, r2) in intervals.iter().skip(i + 1) {
                if ca == cb {
                    continue;
                }
                assert!(
                    r1 < a2 || r2 < a1,
                    "clients {ca} and {cb} overlapped: [{a1},{r1}] vs [{a2},{r2}]"
                );
            }
        }
    }

    #[test]
    fn grants_are_fifo_per_queue_order() {
        let (mut world, _) = lock_world(2);
        world.run_virtual_rounds(40);
        let (state, _) = world.vn_state(VnId(0)).expect("lock server alive");
        assert!(state.grant_log.len() >= 3, "several grants happened");
        // Consecutive grants never go to the client that still holds
        // the lock: every re-grant is separated by a release.
        for w in state.grant_log.windows(2) {
            assert!(
                w[0] != w[1],
                "double grant to client {} without a release between",
                w[0]
            );
        }
    }

    #[test]
    fn lock_automaton_dedupes_requests() {
        let a = LockVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::ORIGIN,
            vr: 1,
            scheduled: true,
            next_scheduled: false,
        };
        let input = VirtualInput {
            messages: vec![
                LockMsg::Request { client: 1 },
                LockMsg::Request { client: 1 },
                LockMsg::Request { client: 2 },
            ],
            collision: false,
        };
        a.step(&mut st, ctx, &input);
        assert_eq!(st.queue, vec![1, 2]);
    }

    #[test]
    fn release_by_non_holder_is_ignored() {
        let a = LockVn;
        let mut st = LockState {
            holder: Some(7),
            queue: vec![],
            grant_log: vec![7],
        };
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::ORIGIN,
            vr: 2,
            scheduled: true,
            next_scheduled: true,
        };
        let input = VirtualInput {
            messages: vec![LockMsg::Release { client: 3 }],
            collision: false,
        };
        let out = a.step(&mut st, ctx, &input);
        assert_eq!(st.holder, Some(7), "stranger cannot release");
        assert_eq!(out, None);
    }
}
