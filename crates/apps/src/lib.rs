//! # vi-apps
//!
//! Applications built on the virtual-infrastructure abstraction,
//! following the paper's motivating use cases:
//!
//! * [`tracking`] — a location / tracking service hosted on a grid of
//!   virtual nodes (paper references \[11, 16, 34, 36\]).
//! * [`register`] — a single-writer atomic register replicated at a
//!   virtual node, in the spirit of the GeoQuorums motivation \[13\].
//! * [`georouting`] — greedy geographic routing over the virtual-node
//!   grid (paper references \[12, 16\]).
//! * [`mutex`] — a FIFO lock server hosted on a virtual node (the
//!   coordination primitive behind the robot motivation \[4, 27\]).
//!
//! Each app's message type is plain data the `vi-traffic` service
//! adapters match on directly to extract request completions (and
//! their semantic outcomes, for the `vi-audit` history checkers) when
//! the apps run under generated client load; `LockMsg::granted_client`
//! and `RouteMsg::inject` are the shared helpers that survive on the
//! adapter path.

pub mod georouting;
pub mod mutex;
pub mod register;
pub mod tracking;
