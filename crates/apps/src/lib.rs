//! # vi-apps
//!
//! Applications built on the virtual-infrastructure abstraction,
//! following the paper's motivating use cases:
//!
//! * [`tracking`] — a location / tracking service hosted on a grid of
//!   virtual nodes (paper references \[11, 16, 34, 36\]).
//! * [`register`] — a single-writer atomic register replicated at a
//!   virtual node, in the spirit of the GeoQuorums motivation \[13\].
//! * [`georouting`] — greedy geographic routing over the virtual-node
//!   grid (paper references \[12, 16\]).
//! * [`mutex`] — a FIFO lock server hosted on a virtual node (the
//!   coordination primitive behind the robot motivation \[4, 27\]).
//!
//! Each app's message type exposes response matchers (`ack_tag`,
//! `granted_client`, `answered_object`, …) — the hooks the
//! `vi-traffic` service adapters key request completions on when the
//! apps run under generated client load.

pub mod georouting;
pub mod mutex;
pub mod register;
pub mod tracking;
