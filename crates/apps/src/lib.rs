//! # vi-apps
//!
//! Applications built on the virtual-infrastructure abstraction,
//! following the paper's motivating use cases:
//!
//! * [`tracking`] — a location / tracking service hosted on a grid of
//!   virtual nodes (paper references \[11, 16, 34, 36\]).
//! * [`register`] — a single-writer atomic register replicated at a
//!   virtual node, in the spirit of the GeoQuorums motivation \[13\].
//! * [`georouting`] — greedy geographic routing over the virtual-node
//!   grid (paper references \[12, 16\]).
//! * [`mutex`] — a FIFO lock server hosted on a virtual node (the
//!   coordination primitive behind the robot motivation \[4, 27\]).

pub mod georouting;
pub mod mutex;
pub mod register;
pub mod tracking;
