//! A location / tracking service on virtual infrastructure.
//!
//! One of the paper's headline applications (references [11, 16, 34,
//! 36]): mobile objects periodically report their position to the
//! virtual node covering their area; other clients query any virtual
//! node and receive the last known cell of the object. Because the
//! virtual node is reliable and immobile, the service survives the
//! churn of the devices that happen to implement it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vi_core::vi::{ClientApp, VirtualReception};
use vi_core::vi::{VirtualAutomaton, VirtualInput, VnCtx};
use vi_radio::geometry::Point;
use vi_radio::WireSized;

/// A grid cell (quantized position).
pub type Cell = (u32, u32);

/// Quantizes a position to a tracking cell of the given size.
///
/// # Panics
///
/// Panics if `cell_size` is not positive.
pub fn cell_of(pos: Point, cell_size: f64) -> Cell {
    assert!(cell_size > 0.0, "cell size must be positive");
    (
        (pos.x.max(0.0) / cell_size) as u32,
        (pos.y.max(0.0) / cell_size) as u32,
    )
}

/// Messages of the tracking service.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrackMsg {
    /// "Object `object` is in `cell`."
    Report {
        /// The tracked object's identifier.
        object: u32,
        /// Its current cell.
        cell: Cell,
    },
    /// "Where is `object`?"
    Query {
        /// The queried object.
        object: u32,
    },
    /// The virtual node's reply.
    Answer {
        /// The queried object.
        object: u32,
        /// Its last reported cell, if known.
        cell: Option<Cell>,
    },
}

impl WireSized for TrackMsg {
    fn wire_size(&self) -> usize {
        match self {
            TrackMsg::Report { .. } => 1 + 4 + 8,
            TrackMsg::Query { .. } => 1 + 4,
            TrackMsg::Answer { .. } => 1 + 4 + 9,
        }
    }
}

/// The tracking virtual node: remembers the last reported cell per
/// object and answers queries when its broadcast slot comes up.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrackingVn;

/// State of [`TrackingVn`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackState {
    /// Last known cell per object.
    pub objects: BTreeMap<u32, Cell>,
    /// Queries awaiting an answer, FIFO.
    pub pending: Vec<u32>,
}

impl VirtualAutomaton for TrackingVn {
    type Msg = TrackMsg;
    type State = TrackState;

    fn init(&self) -> TrackState {
        TrackState::default()
    }

    fn step(
        &self,
        state: &mut TrackState,
        ctx: VnCtx,
        input: &VirtualInput<TrackMsg>,
    ) -> Option<TrackMsg> {
        for m in &input.messages {
            match m {
                TrackMsg::Report { object, cell } => {
                    state.objects.insert(*object, *cell);
                }
                TrackMsg::Query { object } => {
                    if !state.pending.contains(object) {
                        state.pending.push(*object);
                    }
                }
                TrackMsg::Answer { .. } => {}
            }
        }
        // Answer one pending query per broadcast opportunity; emit only
        // into rounds where this virtual node is scheduled, to avoid
        // colliding with neighbours.
        if ctx.next_scheduled && !state.pending.is_empty() {
            let object = state.pending.remove(0);
            return Some(TrackMsg::Answer {
                object,
                cell: state.objects.get(&object).copied(),
            });
        }
        None
    }
}

/// A client that reports its own (quantized) position every `period`
/// virtual rounds.
pub struct ReporterClient {
    object: u32,
    period: u64,
    cell_size: f64,
}

impl ReporterClient {
    /// Creates a reporter for `object`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `cell_size <= 0`.
    pub fn new(object: u32, period: u64, cell_size: f64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(cell_size > 0.0, "cell size must be positive");
        ReporterClient {
            object,
            period,
            cell_size,
        }
    }
}

impl ClientApp<TrackMsg> for ReporterClient {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        pos: Point,
        _prev: &VirtualReception<TrackMsg>,
    ) -> Option<TrackMsg> {
        (vr.is_multiple_of(self.period)).then(|| TrackMsg::Report {
            object: self.object,
            cell: cell_of(pos, self.cell_size),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A client that queries for an object every `period` virtual rounds
/// and records the answers it hears.
pub struct QueryClient {
    object: u32,
    period: u64,
    /// `(virtual round heard, answered cell)` pairs.
    pub answers: Vec<(u64, Option<Cell>)>,
}

impl QueryClient {
    /// Creates a querier for `object`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(object: u32, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        QueryClient {
            object,
            period,
            answers: Vec::new(),
        }
    }
}

impl ClientApp<TrackMsg> for QueryClient {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        _pos: Point,
        prev: &VirtualReception<TrackMsg>,
    ) -> Option<TrackMsg> {
        for m in &prev.messages {
            if let TrackMsg::Answer { object, cell } = m {
                if *object == self.object {
                    self.answers.push((vr, *cell));
                }
            }
        }
        (vr % self.period == 1).then_some(TrackMsg::Query {
            object: self.object,
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_core::vi::{VnId, VnLayout, World, WorldConfig};
    use vi_radio::mobility::Static;
    use vi_radio::RadioConfig;

    #[test]
    fn cell_quantization() {
        assert_eq!(cell_of(Point::new(0.0, 0.0), 10.0), (0, 0));
        assert_eq!(cell_of(Point::new(19.9, 31.0), 10.0), (1, 3));
    }

    #[test]
    fn query_answered_with_reported_cell() {
        let layout = VnLayout::new(vec![Point::new(50.0, 50.0)], 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout,
            automaton: TrackingVn,
            seed: 11,
            record_trace: false,
        });
        // Three devices near the virtual node: a reporter, a querier,
        // and a silent relay (all three also emulate the VN).
        world.add_device(
            Box::new(Static::new(Point::new(50.5, 50.0))),
            Some(Box::new(ReporterClient::new(7, 2, 10.0))),
        );
        let querier = world.add_device(
            Box::new(Static::new(Point::new(49.5, 50.0))),
            Some(Box::new(QueryClient::new(7, 3))),
        );
        world.add_device(Box::new(Static::new(Point::new(50.0, 50.7))), None);
        world.run_virtual_rounds(15);

        let q: &QueryClient = world.device(querier).client::<QueryClient>().unwrap();
        assert!(!q.answers.is_empty(), "querier should have heard an answer");
        let (_, cell) = q.answers.last().unwrap();
        assert_eq!(
            *cell,
            Some(cell_of(Point::new(50.5, 50.0), 10.0)),
            "answer matches the reporter's cell"
        );
    }

    #[test]
    fn tracker_state_remembers_latest_report() {
        let a = TrackingVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::ORIGIN,
            vr: 1,
            scheduled: true,
            next_scheduled: true,
        };
        let input = VirtualInput {
            messages: vec![
                TrackMsg::Report {
                    object: 1,
                    cell: (2, 3),
                },
                TrackMsg::Report {
                    object: 1,
                    cell: (4, 5),
                },
            ],
            collision: false,
        };
        a.step(&mut st, ctx, &input);
        assert_eq!(st.objects.get(&1), Some(&(4, 5)), "later report wins");
    }

    #[test]
    fn unknown_object_answered_with_none() {
        let a = TrackingVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::ORIGIN,
            vr: 1,
            scheduled: true,
            next_scheduled: true,
        };
        let input = VirtualInput {
            messages: vec![TrackMsg::Query { object: 9 }],
            collision: false,
        };
        let out = a.step(&mut st, ctx, &input);
        assert_eq!(
            out,
            Some(TrackMsg::Answer {
                object: 9,
                cell: None
            })
        );
    }
}
