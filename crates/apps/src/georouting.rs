//! Greedy geographic routing over the virtual-node grid.
//!
//! The paper's routing motivation (references [12, 16, 17, 40]):
//! because virtual nodes are immobile and reliably present, they form
//! a static overlay over which classic position-based routing works
//! unmodified — no route discovery, no broken links from mobility.
//! Each virtual node forwards a packet iff it is strictly closer to
//! the destination than the previous carrier; the strict-decrease rule
//! guarantees loop freedom.

use serde::{Deserialize, Serialize};
use vi_core::vi::{ClientApp, VirtualAutomaton, VirtualInput, VirtualReception, VnCtx};
use vi_radio::geometry::Point;
use vi_radio::WireSized;

/// Quantized coordinates (millimeters), giving routing messages a
/// total order without comparing floats.
pub type QPoint = (i64, i64);

/// Quantizes a position to millimeters.
pub fn quantize(p: Point) -> QPoint {
    ((p.x * 1000.0).round() as i64, (p.y * 1000.0).round() as i64)
}

/// Quantized distance (millimeters) between a position and a
/// quantized destination.
pub fn qdist(from: Point, to: QPoint) -> u64 {
    let dx = from.x * 1000.0 - to.0 as f64;
    let dy = from.y * 1000.0 - to.1 as f64;
    (dx * dx + dy * dy).sqrt().round() as u64
}

/// Routing messages: a packet in flight.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteMsg {
    /// A packet addressed to the virtual node at `dst`.
    Packet {
        /// Destination location (quantized).
        dst: QPoint,
        /// Application payload.
        payload: u32,
        /// Distance of the previous carrier to the destination; only
        /// strictly closer virtual nodes forward (loop freedom).
        carrier_dist: u64,
    },
}

impl RouteMsg {
    /// A freshly injected packet: maximal carrier distance, so any
    /// virtual node hearing it makes progress (how clients and load
    /// generators enter packets into the overlay).
    pub fn inject(dst: QPoint, payload: u32) -> Self {
        RouteMsg::Packet {
            dst,
            payload,
            carrier_dist: u64::MAX,
        }
    }
}

impl WireSized for RouteMsg {
    fn wire_size(&self) -> usize {
        1 + 16 + 4 + 8
    }
}

/// The routing automaton.
#[derive(Clone, Copy, Debug, Default)]
pub struct GeoRouterVn;

/// State of [`GeoRouterVn`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterState {
    /// Payloads delivered at this (destination) virtual node.
    pub delivered: Vec<u32>,
    /// Packets queued for forwarding: `(dst, payload)`.
    pub queue: Vec<(QPoint, u32)>,
    /// Payloads this node has already handled (forward-once).
    pub seen: Vec<u32>,
}

impl VirtualAutomaton for GeoRouterVn {
    type Msg = RouteMsg;
    type State = RouterState;

    fn init(&self) -> RouterState {
        RouterState::default()
    }

    fn step(
        &self,
        state: &mut RouterState,
        ctx: VnCtx,
        input: &VirtualInput<RouteMsg>,
    ) -> Option<RouteMsg> {
        for m in &input.messages {
            let RouteMsg::Packet {
                dst,
                payload,
                carrier_dist,
            } = m;
            if state.seen.contains(payload) {
                continue;
            }
            let my_dist = qdist(ctx.loc, *dst);
            if my_dist >= *carrier_dist {
                continue; // not making progress: drop (loop freedom)
            }
            state.seen.push(*payload);
            if my_dist == 0 {
                state.delivered.push(*payload);
            } else {
                state.queue.push((*dst, *payload));
            }
        }
        if ctx.next_scheduled && !state.queue.is_empty() {
            let (dst, payload) = state.queue.remove(0);
            return Some(RouteMsg::Packet {
                dst,
                payload,
                carrier_dist: qdist(ctx.loc, dst),
            });
        }
        None
    }
}

/// A client that injects one packet towards `dst` at virtual round
/// `at_vr`.
pub struct InjectorClient {
    dst: QPoint,
    payload: u32,
    at_vr: u64,
    sent: bool,
}

impl InjectorClient {
    /// Creates an injector addressing the quantized location `dst`.
    pub fn new(dst: QPoint, payload: u32, at_vr: u64) -> Self {
        InjectorClient {
            dst,
            payload,
            at_vr,
            sent: false,
        }
    }
}

impl ClientApp<RouteMsg> for InjectorClient {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        _pos: Point,
        _prev: &VirtualReception<RouteMsg>,
    ) -> Option<RouteMsg> {
        if vr >= self.at_vr && !self.sent {
            self.sent = true;
            return Some(RouteMsg::Packet {
                dst: self.dst,
                payload: self.payload,
                carrier_dist: u64::MAX,
            });
        }
        None
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_core::vi::{VnId, VnLayout, World, WorldConfig};
    use vi_radio::mobility::Static;
    use vi_radio::RadioConfig;

    #[test]
    fn quantization_roundtrip() {
        let p = Point::new(12.345, -6.789);
        assert_eq!(quantize(p), (12345, -6789));
        assert_eq!(qdist(p, quantize(p)), 0);
        assert_eq!(qdist(Point::new(0.0, 0.0), (3000, 4000)), 5000);
    }

    /// A packet injected near vn0 hops vn0 → vn1 → vn2 and is
    /// delivered at the destination exactly once.
    #[test]
    fn packet_routes_across_three_hops() {
        // Row of three virtual nodes, 18 m apart; R1 = 40 keeps
        // adjacent emulation regions in broadcast range while the
        // conflict rule (R1 + 2·R2 = 160) forces distinct schedule
        // slots, so forwarding hops never collide.
        let locs = vec![
            Point::new(50.0, 50.0),
            Point::new(68.0, 50.0),
            Point::new(86.0, 50.0),
        ];
        let dst = quantize(locs[2]);
        let layout = VnLayout::new(locs.clone(), 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(40.0, 60.0),
            layout,
            automaton: GeoRouterVn,
            seed: 17,
            record_trace: false,
        });
        // Two emulating devices per virtual node + the injector client
        // near vn0.
        for loc in &locs {
            world.add_device(Box::new(Static::new(Point::new(loc.x + 0.5, loc.y))), None);
            world.add_device(Box::new(Static::new(Point::new(loc.x - 0.5, loc.y))), None);
        }
        world.add_device(
            Box::new(Static::new(Point::new(50.0, 51.0))),
            Some(Box::new(InjectorClient::new(dst, 42, 5))),
        );
        world.run_virtual_rounds(30);

        let (state, _) = world.vn_state(VnId(2)).expect("vn2 alive");
        assert_eq!(state.delivered, vec![42], "delivered exactly once");
        let (mid, _) = world.vn_state(VnId(1)).expect("vn1 alive");
        assert!(mid.seen.contains(&42), "vn1 forwarded the packet");
        assert!(mid.delivered.is_empty(), "vn1 is not the destination");
    }

    #[test]
    fn non_progress_packets_are_dropped() {
        let a = GeoRouterVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::new(100.0, 0.0),
            vr: 1,
            scheduled: false,
            next_scheduled: true,
        };
        // Carrier was already closer than us: drop.
        let input = VirtualInput {
            messages: vec![RouteMsg::Packet {
                dst: (0, 0),
                payload: 1,
                carrier_dist: 50_000,
            }],
            collision: false,
        };
        let out = a.step(&mut st, ctx, &input);
        assert_eq!(out, None);
        assert!(st.queue.is_empty() && st.delivered.is_empty());
    }

    #[test]
    fn forward_once_per_payload() {
        let a = GeoRouterVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: VnId(0),
            loc: Point::new(1.0, 0.0),
            vr: 1,
            scheduled: false,
            next_scheduled: true,
        };
        let pkt = RouteMsg::Packet {
            dst: (0, 0),
            payload: 7,
            carrier_dist: u64::MAX,
        };
        let input = VirtualInput {
            messages: vec![pkt.clone(), pkt],
            collision: false,
        };
        let out = a.step(&mut st, ctx, &input);
        assert!(out.is_some());
        assert!(st.queue.is_empty(), "duplicate suppressed, queue drained");
    }
}
