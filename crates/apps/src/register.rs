//! A single-writer register hosted on a virtual node.
//!
//! The GeoQuorums motivation (reference \[13\] in the paper): an atomic object
//! anchored at a geographic focal point, implemented by whatever
//! devices are nearby. Here the focal point object is one virtual
//! node; the replication and fault tolerance come entirely from the
//! virtual-infrastructure layer, so the register logic itself is a
//! dozen lines — precisely the programming-simplification argument of
//! the paper's introduction.
//!
//! Consistency: writes carry monotonically increasing tags; the
//! virtual node adopts the largest tag seen. Readers observe a
//! *regular* register on the decided prefix: every read returns a
//! value no older than the last acknowledged write (tag-monotone reads
//! — asserted in the tests).

use serde::{Deserialize, Serialize};
use vi_core::vi::{ClientApp, VirtualAutomaton, VirtualInput, VirtualReception, VnCtx};
use vi_radio::geometry::Point;
use vi_radio::WireSized;

/// Messages of the register service.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegMsg {
    /// Write request: store `value` under `tag`.
    Write {
        /// Writer's tag (monotone per writer).
        tag: u64,
        /// The value.
        value: u64,
    },
    /// The virtual node acknowledges the write with this tag.
    Ack {
        /// The acknowledged tag.
        tag: u64,
    },
    /// Read request, identified by a client nonce.
    Read {
        /// The reader's nonce.
        nonce: u64,
    },
    /// The virtual node's read reply.
    Value {
        /// Echoes the read nonce.
        nonce: u64,
        /// Tag of the returned value.
        tag: u64,
        /// The register contents.
        value: u64,
    },
}

impl WireSized for RegMsg {
    fn wire_size(&self) -> usize {
        match self {
            RegMsg::Write { .. } => 17,
            RegMsg::Ack { .. } => 9,
            RegMsg::Read { .. } => 9,
            RegMsg::Value { .. } => 25,
        }
    }
}

/// A queued reply awaiting the virtual node's broadcast slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PendingReply {
    /// Acknowledge a write tag.
    Ack(u64),
    /// Answer a read nonce.
    Value(u64),
}

/// The register automaton.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegisterVn;

/// State of [`RegisterVn`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterState {
    /// Current tag (0 = never written).
    pub tag: u64,
    /// Current value.
    pub value: u64,
    /// Replies awaiting broadcast, FIFO.
    pub pending: Vec<PendingReply>,
}

impl VirtualAutomaton for RegisterVn {
    type Msg = RegMsg;
    type State = RegisterState;

    fn init(&self) -> RegisterState {
        RegisterState::default()
    }

    fn step(
        &self,
        state: &mut RegisterState,
        ctx: VnCtx,
        input: &VirtualInput<RegMsg>,
    ) -> Option<RegMsg> {
        for m in &input.messages {
            match m {
                RegMsg::Write { tag, value } => {
                    if *tag > state.tag {
                        state.tag = *tag;
                        state.value = *value;
                    }
                    state.pending.push(PendingReply::Ack(*tag));
                }
                RegMsg::Read { nonce } => state.pending.push(PendingReply::Value(*nonce)),
                RegMsg::Ack { .. } | RegMsg::Value { .. } => {}
            }
        }
        if ctx.next_scheduled && !state.pending.is_empty() {
            return Some(match state.pending.remove(0) {
                PendingReply::Ack(tag) => RegMsg::Ack { tag },
                PendingReply::Value(nonce) => RegMsg::Value {
                    nonce,
                    tag: state.tag,
                    value: state.value,
                },
            });
        }
        None
    }
}

/// A single writer: issues `Write(tag, base + tag)` and advances the
/// tag once the matching ack arrives (retrying meanwhile).
pub struct WriterClient {
    base: u64,
    tag: u64,
    acked: u64,
    writes_total: u64,
    /// Tags acknowledged so far, in arrival order.
    pub ack_log: Vec<u64>,
}

impl WriterClient {
    /// Creates a writer producing values `base + tag`, issuing
    /// `writes_total` writes in total.
    pub fn new(base: u64, writes_total: u64) -> Self {
        WriterClient {
            base,
            tag: 1,
            acked: 0,
            writes_total,
            ack_log: Vec::new(),
        }
    }
}

impl ClientApp<RegMsg> for WriterClient {
    fn on_virtual_round(
        &mut self,
        _vr: u64,
        _pos: Point,
        prev: &VirtualReception<RegMsg>,
    ) -> Option<RegMsg> {
        for m in &prev.messages {
            if let RegMsg::Ack { tag } = m {
                if *tag == self.tag && self.acked < self.tag {
                    self.acked = self.tag;
                    self.ack_log.push(*tag);
                    self.tag += 1;
                }
            }
        }
        (self.tag <= self.writes_total).then_some(RegMsg::Write {
            tag: self.tag,
            value: self.base + self.tag,
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A reader: issues `Read` every `period` rounds and logs the replies.
pub struct ReaderClient {
    period: u64,
    next_nonce: u64,
    /// `(tag, value)` pairs observed, in arrival order.
    pub read_log: Vec<(u64, u64)>,
}

impl ReaderClient {
    /// Creates a reader.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        ReaderClient {
            period,
            next_nonce: 1,
            read_log: Vec::new(),
        }
    }
}

impl ClientApp<RegMsg> for ReaderClient {
    fn on_virtual_round(
        &mut self,
        vr: u64,
        _pos: Point,
        prev: &VirtualReception<RegMsg>,
    ) -> Option<RegMsg> {
        for m in &prev.messages {
            if let RegMsg::Value { tag, value, .. } = m {
                self.read_log.push((*tag, *value));
            }
        }
        (vr.is_multiple_of(self.period)).then(|| {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            RegMsg::Read { nonce }
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_core::vi::{VnLayout, World, WorldConfig};
    use vi_radio::mobility::Static;
    use vi_radio::RadioConfig;

    fn register_world() -> (World<RegisterVn>, vi_radio::NodeId, vi_radio::NodeId) {
        let layout = VnLayout::new(vec![Point::new(50.0, 50.0)], 2.5);
        let mut world = World::new(WorldConfig {
            radio: RadioConfig::reliable(10.0, 20.0),
            layout,
            automaton: RegisterVn,
            seed: 13,
            record_trace: false,
        });
        let writer = world.add_device(
            Box::new(Static::new(Point::new(50.4, 50.0))),
            Some(Box::new(WriterClient::new(1000, 3))),
        );
        let reader = world.add_device(
            Box::new(Static::new(Point::new(49.6, 50.0))),
            Some(Box::new(ReaderClient::new(2))),
        );
        world.add_device(Box::new(Static::new(Point::new(50.0, 50.6))), None);
        (world, writer, reader)
    }

    #[test]
    fn writes_are_acked_and_read_back() {
        let (mut world, writer, reader) = register_world();
        world.run_virtual_rounds(30);
        let w: &WriterClient = world.device(writer).client::<WriterClient>().unwrap();
        assert_eq!(w.ack_log, vec![1, 2, 3], "all writes acknowledged in order");
        let r: &ReaderClient = world.device(reader).client::<ReaderClient>().unwrap();
        assert!(!r.read_log.is_empty(), "reader got replies");
        assert_eq!(
            r.read_log.last(),
            Some(&(3, 1003)),
            "final read returns the last write"
        );
    }

    #[test]
    fn reads_are_tag_monotone() {
        let (mut world, _, reader) = register_world();
        world.run_virtual_rounds(30);
        let r: &ReaderClient = world.device(reader).client::<ReaderClient>().unwrap();
        let tags: Vec<u64> = r.read_log.iter().map(|&(t, _)| t).collect();
        assert!(
            tags.windows(2).all(|w| w[0] <= w[1]),
            "regular register: tags never go backward: {tags:?}"
        );
    }

    #[test]
    fn stale_tag_does_not_overwrite() {
        let a = RegisterVn;
        let mut st = a.init();
        let ctx = VnCtx {
            vn: vi_core::vi::VnId(0),
            loc: Point::ORIGIN,
            vr: 1,
            scheduled: true,
            next_scheduled: false,
        };
        a.step(
            &mut st,
            ctx,
            &VirtualInput {
                messages: vec![RegMsg::Write { tag: 5, value: 50 }],
                collision: false,
            },
        );
        a.step(
            &mut st,
            ctx,
            &VirtualInput {
                messages: vec![RegMsg::Write { tag: 3, value: 30 }],
                collision: false,
            },
        );
        assert_eq!((st.tag, st.value), (5, 50), "stale write ignored");
    }
}
